package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"queuemachine/internal/pe"
	"queuemachine/internal/trace"
)

// runEvent is one BeginRun/EndRun observation, kept in arrival order.
type runEvent struct {
	begin   bool
	pe, ctx int
	at      int64
}

// captureRecorder records enough of the hook stream to check the event
// loop's instrumentation invariants.
type captureRecorder struct {
	trace.NopRecorder
	every int64

	runs       []runEvent
	creates    int
	exits      int
	instrs     int64
	rendezvous int
	msgOps     int
	samples    []trace.MachineSample
	sampleAts  []int64
}

func (c *captureRecorder) SampleEvery() int64 { return c.every }

func (c *captureRecorder) BeginRun(pe, ctx int, at, _ int64, _ bool) {
	c.runs = append(c.runs, runEvent{begin: true, pe: pe, ctx: ctx, at: at})
}

func (c *captureRecorder) EndRun(pe, ctx int, at int64, _ trace.EndReason) {
	c.runs = append(c.runs, runEvent{pe: pe, ctx: ctx, at: at})
}

func (c *captureRecorder) Instr(_, _, _, _ int, _ string, _ int64, _, _ int) { c.instrs++ }

func (c *captureRecorder) ContextCreated(_, _, _ int, _ int64) { c.creates++ }
func (c *captureRecorder) ContextExited(_, _ int, _ int64)     { c.exits++ }

func (c *captureRecorder) MsgOp(_ int, _ int32, _ trace.ChanOp, start, end int64, _, completed bool, _, _ int) {
	c.msgOps++
	if completed {
		c.rendezvous++
	}
}

func (c *captureRecorder) Sample(at int64, s trace.MachineSample) {
	c.samples = append(c.samples, s)
	c.sampleAts = append(c.sampleAts, at)
}

// runTraced executes src with the given recorder installed.
func runTraced(t *testing.T, src string, numPEs int, rec trace.Recorder) *Result {
	t.Helper()
	sys, err := New(assemble(t, src), numPEs, DefaultParams())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sys.SetRecorder(rec)
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestTracedRunMatchesUntraced is the zero-overhead contract's observable
// half: installing a recorder must not change the simulation.
func TestTracedRunMatchesUntraced(t *testing.T) {
	src := fanOut(4, 10)
	plain := run(t, src, 4)
	traced := runTraced(t, src, 4, &captureRecorder{every: 100})
	if plain.Cycles != traced.Cycles || plain.Instructions != traced.Instructions {
		t.Errorf("traced run diverged: cycles %d vs %d, instructions %d vs %d",
			plain.Cycles, traced.Cycles, plain.Instructions, traced.Instructions)
	}
	if plain.Cache.Rendezvous != traced.Cache.Rendezvous ||
		plain.Kernel.ContextsCreated != traced.Kernel.ContextsCreated {
		t.Errorf("traced run diverged: %+v vs %+v", plain.Kernel, traced.Kernel)
	}
}

func TestRecorderEventInvariants(t *testing.T) {
	cap := &captureRecorder{every: 50}
	res := runTraced(t, fanOut(4, 10), 4, cap)

	// Each PE alternates BeginRun/EndRun for the same context, and a run
	// never ends before it begins.
	open := map[int]*runEvent{}
	for i := range cap.runs {
		e := &cap.runs[i]
		if e.begin {
			if prev := open[e.pe]; prev != nil {
				t.Fatalf("PE %d: BeginRun(ctx %d) while ctx %d still running", e.pe, e.ctx, prev.ctx)
			}
			open[e.pe] = e
			continue
		}
		prev := open[e.pe]
		if prev == nil || prev.ctx != e.ctx {
			t.Fatalf("PE %d: EndRun(ctx %d) without matching BeginRun", e.pe, e.ctx)
		}
		if e.at < prev.at {
			t.Fatalf("PE %d ctx %d: run ends at %d before it begins at %d", e.pe, e.ctx, e.at, prev.at)
		}
		open[e.pe] = nil
	}

	if int64(cap.creates) != res.Kernel.ContextsCreated {
		t.Errorf("ContextCreated hooks = %d, kernel created %d", cap.creates, res.Kernel.ContextsCreated)
	}
	if int64(cap.exits) != res.Kernel.ContextsFinished {
		t.Errorf("ContextExited hooks = %d, kernel finished %d", cap.exits, res.Kernel.ContextsFinished)
	}
	if cap.instrs != res.Instructions {
		t.Errorf("Instr hooks = %d, result reports %d instructions", cap.instrs, res.Instructions)
	}
	if int64(cap.rendezvous) != res.Cache.Rendezvous {
		t.Errorf("completed MsgOps = %d, cache reports %d rendezvous", cap.rendezvous, res.Cache.Rendezvous)
	}

	// Samples arrive in time order with non-decreasing cumulative counters,
	// and the final sample matches the end-of-run aggregates.
	if len(cap.samples) == 0 {
		t.Fatal("no samples delivered")
	}
	for i := 1; i < len(cap.samples); i++ {
		if cap.sampleAts[i] <= cap.sampleAts[i-1] {
			t.Errorf("sample %d at %d not after sample %d at %d", i, cap.sampleAts[i], i-1, cap.sampleAts[i-1])
		}
		a, b := cap.samples[i-1], cap.samples[i]
		if b.Instructions < a.Instructions || b.BusyCycles < a.BusyCycles ||
			b.CacheHits < a.CacheHits || b.RingMessages < a.RingMessages {
			t.Errorf("cumulative counters regressed between samples %d and %d: %+v -> %+v", i-1, i, a, b)
		}
	}
	last := cap.samples[len(cap.samples)-1]
	if last.Instructions != res.Instructions {
		t.Errorf("final sample instructions = %d, result %d", last.Instructions, res.Instructions)
	}
	if cap.sampleAts[len(cap.sampleAts)-1] != res.Cycles {
		t.Errorf("final sample at %d, run ended at %d", cap.sampleAts[len(cap.sampleAts)-1], res.Cycles)
	}
}

// TestTracedRunsInParallel exercises the hook paths under the race detector:
// concurrent simulations each own a recorder and must not share state.
func TestTracedRunsInParallel(t *testing.T) {
	src := fanOut(3, 8)
	obj := assemble(t, src)
	want := run(t, src, 2).Cycles
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys, err := New(obj, 2, DefaultParams())
			if err != nil {
				t.Error(err)
				return
			}
			sys.SetRecorder(trace.Multi(trace.NewChrome(0), trace.NewTimeline(100)))
			res, err := sys.Run()
			if err != nil {
				t.Error(err)
				return
			}
			if res.Cycles != want {
				t.Errorf("cycles = %d, want %d", res.Cycles, want)
			}
		}()
	}
	wg.Wait()
}

// TestChromeTraceEndToEnd runs a real multi-context program under the Chrome
// recorder and checks the serialized document is valid trace-event JSON.
func TestChromeTraceEndToEnd(t *testing.T) {
	chrome := trace.NewChrome(100)
	runTraced(t, fanOut(4, 10), 4, chrome)
	var buf bytes.Buffer
	if err := chrome.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace is empty")
	}
	phases := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Pid != 1 || e.Ph == "" {
			t.Fatalf("malformed event %+v", e)
		}
		phases[e.Ph] = true
	}
	for _, ph := range []string{"X", "i", "C", "M"} {
		if !phases[ph] {
			t.Errorf("trace has no %q events", ph)
		}
	}
}

// TestTimelineFinalPartialBucket is the regression test for the timeline's
// final-bucket handling: a run whose length is not a multiple of the bucket
// size must close with one correctly scaled partial bucket, and an exit
// trap carrying time across several boundaries must still produce one
// bucket per boundary rather than a single over-wide one.
func TestTimelineFinalPartialBucket(t *testing.T) {
	src := fanOut(4, 10)
	cycles := run(t, src, 4).Cycles

	// Pick a bucket size that does not divide the run length so the final
	// bucket is genuinely partial.
	every := int64(64)
	for cycles%every == 0 {
		every++
	}
	tl := trace.NewTimeline(every)
	res := runTraced(t, src, 4, tl)
	series := tl.Series()
	if series.BucketCycles != every {
		t.Fatalf("BucketCycles = %d, want %d", series.BucketCycles, every)
	}
	buckets := series.Buckets
	if len(buckets) == 0 {
		t.Fatal("no buckets")
	}

	last := buckets[len(buckets)-1]
	if last.EndCycle != res.Cycles {
		t.Errorf("last bucket ends at %d, run ended at %d", last.EndCycle, res.Cycles)
	}
	wantLast := res.Cycles % every
	if got := last.EndCycle - buckets[len(buckets)-2].EndCycle; got != wantLast {
		t.Errorf("final partial bucket spans %d cycles, want %d", got, wantLast)
	}
	var instrs int64
	prevEnd := int64(0)
	for i, b := range buckets {
		width := b.EndCycle - prevEnd
		if i < len(buckets)-1 && width != every {
			t.Errorf("bucket %d spans %d cycles, want %d", i, width, every)
		}
		if width <= 0 || width > every {
			t.Errorf("bucket %d spans %d cycles, want (0, %d]", i, width, every)
		}
		// Rates must be scaled by the bucket's true width — a partial
		// bucket normalized by the nominal width would fall outside [0,1].
		if b.Utilization < 0 || b.Utilization > 1 {
			t.Errorf("bucket %d utilization %v outside [0,1]", i, b.Utilization)
		}
		if b.CacheHitRate < 0 || b.CacheHitRate > 1 {
			t.Errorf("bucket %d cache hit rate %v outside [0,1]", i, b.CacheHitRate)
		}
		instrs += b.Instructions
		prevEnd = b.EndCycle
	}
	if instrs != res.Instructions {
		t.Errorf("bucket instructions sum to %d, run retired %d", instrs, res.Instructions)
	}
}

func TestDeadlockErrorIsTyped(t *testing.T) {
	_, err := Run(assemble(t, deadlocked), 2, DefaultParams())
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want *DeadlockError, got %T: %v", err, err)
	}
	if dl.Cycle <= 0 || dl.Live <= 0 || len(dl.Snapshot) == 0 {
		t.Errorf("deadlock detail = %+v", dl)
	}
}

// TestDeadlockSnapshotContents pins what a deadlock report tells the user:
// which contexts are stuck, how they are blocked, where they sit in the
// program, and the cycle the machine stalled at.
func TestDeadlockSnapshotContents(t *testing.T) {
	_, err := Run(assemble(t, deadlocked), 2, DefaultParams())
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want *DeadlockError, got %T: %v", err, err)
	}
	// The program is one context that creates a channel and receives on it
	// forever: exactly one live context, blocked in a recv.
	if dl.Live != 1 || len(dl.Snapshot) != 1 {
		t.Fatalf("live = %d, snapshot %d lines; want 1 and 1:\n%s",
			dl.Live, len(dl.Snapshot), strings.Join(dl.Snapshot, "\n"))
	}
	line := dl.Snapshot[0]
	for _, want := range []string{
		"context 0",    // which context
		"graph 0",      // where it sits
		"blocked-recv", // how it is blocked
		"parent -1",    // the root context has no parent
		"cin",          // its channel registers
		"cout",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("snapshot line %q missing %q", line, want)
		}
	}
	// The error text carries the stall cycle and the snapshot verbatim.
	msg := dl.Error()
	if !strings.Contains(msg, fmt.Sprintf("cycle %d", dl.Cycle)) || !strings.Contains(msg, line) {
		t.Errorf("Error() = %q; want the cycle and the snapshot inline", msg)
	}
}

func TestResultEdgeCases(t *testing.T) {
	// A zero-value result — no cycles, no PEs — reports zero, not NaN.
	var empty Result
	if got := empty.Utilization(); got != 0 {
		t.Errorf("empty Utilization = %v", got)
	}
	if got := empty.AvgQueueLength(); got != 0 {
		t.Errorf("empty AvgQueueLength = %v", got)
	}
	// Cycles elapsed but no instruction ever retired (all PEs idle).
	idle := Result{Cycles: 100, PEStats: []pe.Stats{{}, {}}}
	if got := idle.Utilization(); got != 0 {
		t.Errorf("idle Utilization = %v", got)
	}
	if got := idle.AvgQueueLength(); got != 0 {
		t.Errorf("idle AvgQueueLength = %v", got)
	}
	// PE stats present but zero simulated cycles.
	degenerate := Result{PEStats: []pe.Stats{{Cycles: 5, Instructions: 2, QueueSum: 6}}}
	if got := degenerate.Utilization(); got != 0 {
		t.Errorf("zero-cycle Utilization = %v", got)
	}
	if got := degenerate.AvgQueueLength(); got != 3 {
		t.Errorf("AvgQueueLength = %v, want 3", got)
	}
}
