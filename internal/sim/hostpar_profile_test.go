package sim_test

import (
	"reflect"
	"testing"

	"queuemachine/internal/compile"
	"queuemachine/internal/profile"
	"queuemachine/internal/sim"
	"queuemachine/internal/workloads"
)

// profileRun executes a workload with a cycle-attribution profiler attached
// and returns the finalized profile.
func profileRun(t *testing.T, wl workloads.Workload, numPEs, hostWorkers int) *profile.Profile {
	t.Helper()
	art, err := compile.Compile(wl.Source, compile.Options{})
	if err != nil {
		t.Fatalf("%s: Compile: %v", wl.Name, err)
	}
	params := sim.DefaultParams()
	params.HostParallel = hostWorkers
	sys, err := sim.New(art.Object, numPEs, params)
	if err != nil {
		t.Fatalf("%s: New: %v", wl.Name, err)
	}
	prof := profile.New(numPEs)
	names := make([]string, len(art.Object.Graphs))
	for i, g := range art.Object.Graphs {
		names[i] = g.Name
	}
	prof.SetGraphNames(names)
	sys.SetRecorder(prof)
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("%s: Run: %v", wl.Name, err)
	}
	return prof.Finalize(res.Cycles)
}

// TestHostParProfilerAttribution: the cycle-attribution profiler consumes
// the hook stream, so under the host-parallel engine it must produce the
// identical attribution — including the invariant that causes still sum to
// PEs × makespan — at every worker count.
func TestHostParProfilerAttribution(t *testing.T) {
	for _, wl := range []workloads.Workload{
		workloads.Congruence(3),
		workloads.Stencil(8, 2),
	} {
		seq := profileRun(t, wl, 8, 0)
		for _, w := range []int{1, 2, 4} {
			par := profileRun(t, wl, 8, w)
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("%s on 8 PEs, %d workers: profile differs from sequential engine", wl.Name, w)
			}
			var total int64
			for _, v := range par.Causes {
				total += v
			}
			if want := int64(par.PEs) * par.Cycles; total != want {
				t.Errorf("%s on 8 PEs, %d workers: causes sum to %d, want PEs×makespan = %d",
					wl.Name, w, total, want)
			}
		}
	}
}
