package sim

import (
	"context"
	"fmt"

	"queuemachine/internal/isa"
	"queuemachine/internal/kernel"
	"queuemachine/internal/mcache"
	"queuemachine/internal/pe"
	"queuemachine/internal/ring"
	"queuemachine/internal/sched"
	"queuemachine/internal/trace"
)

// Result reports one simulated run.
type Result struct {
	Cycles       int64
	NumPEs       int
	Instructions int64
	PEStats      []pe.Stats
	Kernel       kernel.Stats
	Ring         ring.Stats
	Cache        mcache.Stats
	// Switches and Resumes count context dispatches with and without a
	// window roll-out; RolledRegisters totals the registers rolled out.
	Switches, Resumes, RolledRegisters int64
	MemReads, MemWrites                int64
	// Host reports the host-parallel engine's own execution counters; the
	// zero value (Workers == 0) means the run used the sequential engine.
	// Unlike every other field it describes the simulator, not the
	// simulated machine — simulated statistics are bit-identical across
	// engines and worker counts.
	Host HostStats
	// Data is the final contents of the static data segment, for result
	// verification. It is populated only when Params.KeepData is set (the
	// default): servers that never read the data segment skip the copy.
	Data []int32
}

// AvgQueueLength reports the mean operand-queue span per executed
// instruction across the machine (§5.2's page-utilization measure).
func (r *Result) AvgQueueLength() float64 {
	var sum, n int64
	for _, s := range r.PEStats {
		sum += s.QueueSum
		n += s.Instructions
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Utilization reports the mean fraction of cycles the processing elements
// spent executing instructions.
func (r *Result) Utilization() float64 {
	if r.Cycles == 0 || len(r.PEStats) == 0 {
		return 0
	}
	var busy int64
	for _, s := range r.PEStats {
		busy += s.Cycles
	}
	return float64(busy) / float64(r.Cycles*int64(len(r.PEStats)))
}

// System is one configured multiprocessor simulation.
type System struct {
	prog     *pe.Program
	numPEs   int
	p        Params
	kern     *kernel.Kernel
	bus      *ring.Ring
	caches   []*mcache.Cache
	mpFree   []int64
	machines []*pe.Machine
	mem      *replicatedMemory

	q   eventQueue
	now int64
	seq uint64

	running []*pe.Context
	lastCtx []*pe.Context // context whose window registers are loaded

	// rec is the instrumentation recorder; nil (the default) disables every
	// hook behind a single pointer test. sampleEvery/nextSample drive the
	// cycle-sampled Sample callbacks.
	rec         trace.Recorder
	sampleEvery int64
	nextSample  int64

	// runCtx is the context of the ongoing RunContext call; the batching
	// loop polls it on an instruction-count cadence so a deadline aborts a
	// long straight-line run even when no event boundary is near.
	runCtx                        context.Context
	instrsToPoll                  int
	switches, resumes, rolledRegs int64
	instructions                  int64
	endTime                       int64
	finished                      bool
	err                           error

	// par is the host-parallel execution engine; nil (Params.HostParallel
	// == 0) runs the sequential event loop unchanged.
	par *parEngine
}

// New builds a simulation of the object program on numPEs processing
// elements.
func New(obj *isa.Object, numPEs int, params Params) (*System, error) {
	if numPEs < 1 {
		return nil, fmt.Errorf("sim: need at least one processing element")
	}
	if numPEs > MaxPEs {
		return nil, &ConfigError{Field: "pes", Reason: fmt.Sprintf(
			"%d processing elements exceed the supported maximum of %d", numPEs, MaxPEs)}
	}
	hostWorkers, err := params.HostWorkers(numPEs)
	if err != nil {
		return nil, err
	}
	if hostWorkers > 0 && (params.PE.ALU < 1 || params.PE.Branch < 1) {
		return nil, &ConfigError{Field: "HostParallel", Reason: "requires PE.ALU and PE.Branch costs of at least one cycle " +
			"(zero-cost instructions would starve the lookahead window)"}
	}
	prog, err := pe.LoadProgram(obj)
	if err != nil {
		return nil, err
	}
	partitions := params.PartitionCount(numPEs)
	bus, err := ring.New(numPEs, partitions, params.Ring)
	if err != nil {
		return nil, err
	}
	pol, err := sched.New(params.Scheduler, numPEs, bus)
	if err != nil {
		return nil, err
	}
	s := &System{
		prog:     prog,
		numPEs:   numPEs,
		p:        params,
		kern:     kernel.New(numPEs, pol),
		bus:      bus,
		caches:   make([]*mcache.Cache, numPEs),
		mpFree:   make([]int64, numPEs),
		machines: make([]*pe.Machine, numPEs),
		mem:      newReplicatedMemory(obj.DataWords, numPEs, params.StoreBroadcast),
		running:  make([]*pe.Context, numPEs),
		lastCtx:  make([]*pe.Context, numPEs),
	}
	s.mem.load(obj)
	for i := 0; i < numPEs; i++ {
		s.caches[i] = mcache.New(params.MsgCacheEntries)
		s.machines[i] = pe.NewMachine(i, params.PE, prog, s.mem)
	}
	if hostWorkers > 0 {
		s.par = newParEngine(s, hostWorkers)
	}
	return s, nil
}

// SetRecorder installs an instrumentation recorder on the system and every
// unit beneath it (processing elements, kernel, ring); nil uninstalls. The
// recorder observes the run — it never changes event timing, so cycle counts
// are bit-identical with and without one. Call before Run; recorders are not
// safe for use across concurrent systems.
func (s *System) SetRecorder(rec trace.Recorder) {
	s.rec = rec
	s.kern.SetRecorder(rec)
	s.bus.SetRecorder(rec)
	for _, m := range s.machines {
		m.SetRecorder(rec)
	}
	s.sampleEvery = 0
	if rec != nil {
		s.sampleEvery = rec.SampleEvery()
	}
	s.nextSample = s.sampleEvery
}

// Run executes the program to completion and returns the run statistics.
func Run(obj *isa.Object, numPEs int, params Params) (*Result, error) {
	return RunContext(context.Background(), obj, numPEs, params)
}

// RunContext executes the program to completion, aborting between events
// once ctx is cancelled or its deadline passes.
func RunContext(ctx context.Context, obj *isa.Object, numPEs int, params Params) (*Result, error) {
	s, err := New(obj, numPEs, params)
	if err != nil {
		return nil, err
	}
	return s.RunContext(ctx)
}

// Run drives the event loop until every context has terminated.
func (s *System) Run() (*Result, error) { return s.RunContext(context.Background()) }

// ctxPollEvents is how many events the loop processes between context
// cancellation checks: often enough that a deadline aborts within
// microseconds, rarely enough that the check costs nothing measurable.
// ctxPollInstrs is the same cadence counted in batched instructions: with
// straight-line batching a single event can cover thousands of
// instructions, so the event count alone would let a cancelled run spin
// far past its deadline.
const (
	ctxPollEvents = 1024
	ctxPollInstrs = 1024
)

// RunContext drives the event loop until every context has terminated or
// ctx is done. Cancellation is checked between events, never mid-event, so
// an aborted run leaves no half-applied simulation state. The returned
// error wraps ctx.Err() so callers can test it with errors.Is.
func (s *System) RunContext(ctx context.Context) (*Result, error) {
	// The initial context executes the entry graph on the least-loaded
	// (hence first) processing element, with fresh in/out channels.
	entry := s.prog.Obj.Entry
	main, target := s.kern.CreateContext(entry, s.prog.QueueWords(entry), -1, 0, s.graphPrio(entry), 0)
	main.SetChannels(s.kern.AllocChannel(), s.kern.AllocChannel())
	s.scheduleKick(target, 0)

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim: aborted before start: %w", err)
	}
	s.runCtx = ctx
	s.instrsToPoll = ctxPollInstrs
	if s.par != nil {
		s.par.run()
	} else {
		s.runLoop()
	}
	if s.err != nil {
		return nil, s.err
	}
	if !s.finished {
		return nil, &DeadlockError{Cycle: s.now, Live: s.kern.Live(), Snapshot: s.kern.Snapshot()}
	}
	if s.sampleEvery > 0 {
		// Emit any whole buckets the final events skipped over (the exit
		// trap can carry time across several boundaries at once), then
		// close the final, possibly short, bucket at the end of the run.
		for s.nextSample < s.endTime {
			s.emitSample(s.nextSample)
			s.nextSample += s.sampleEvery
		}
		s.emitSample(s.endTime)
	}
	res := &Result{
		Cycles:          s.endTime,
		NumPEs:          s.numPEs,
		Kernel:          s.kern.Stats,
		Ring:            s.bus.Stats,
		Switches:        s.switches,
		Resumes:         s.resumes,
		RolledRegisters: s.rolledRegs,
		MemReads:        s.mem.Reads(),
		MemWrites:       s.mem.Writes(),
	}
	if s.par != nil {
		res.Host = s.par.stats
	}
	if s.p.KeepData {
		res.Data = append([]int32(nil), s.mem.words...)
	}
	for _, m := range s.machines {
		res.PEStats = append(res.PEStats, m.Stats)
		res.Instructions += m.Stats.Instructions
	}
	for _, c := range s.caches {
		res.Cache.Sends += c.Stats.Sends
		res.Cache.Receives += c.Stats.Receives
		res.Cache.FetchPhis += c.Stats.FetchPhis
		res.Cache.Hits += c.Stats.Hits
		res.Cache.Misses += c.Stats.Misses
		res.Cache.Evictions += c.Stats.Evictions
		res.Cache.Rendezvous += c.Stats.Rendezvous
	}
	return res, nil
}

// runLoop is the sequential event loop: pop events in (time, seq) order and
// dispatch them to their handlers until the program finishes, the queue
// drains (deadlock), or an error trips. Failures land in s.err.
func (s *System) runLoop() {
	var polled uint
	for s.q.len() > 0 && !s.finished && s.err == nil {
		if polled++; polled%ctxPollEvents == 0 {
			if err := s.runCtx.Err(); err != nil {
				s.fail(fmt.Errorf("sim: aborted at cycle %d: %w", s.now, err))
				return
			}
		}
		e := s.q.pop()
		s.now = e.time
		if s.now > s.p.MaxCycles {
			s.err = fmt.Errorf("sim: exceeded %d cycles", s.p.MaxCycles)
			return
		}
		if s.sampleEvery > 0 {
			for s.now >= s.nextSample {
				s.emitSample(s.nextSample)
				s.nextSample += s.sampleEvery
			}
		}
		switch e.kind {
		case evStep:
			s.handleStep(e)
		case evChanReq:
			s.handleChanReq(e)
		case evRecvDone:
			s.handleRecvDone(e)
		case evSendDone:
			s.handleSendDone(e)
		case evWake:
			s.handleWake(e)
		case evKick:
			s.dispatch(int(e.pe))
		}
	}
}

func (s *System) schedule(t int64, e event) {
	e.time = t
	e.seq = s.seq
	s.seq++
	s.q.push(e)
}

func (s *System) scheduleKick(peID int, t int64) {
	s.schedule(t, event{kind: evKick, pe: int32(peID)})
}

func (s *System) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// emitSample snapshots the machine-wide counters for the recorder's Sample
// hook. Only runs when a sampling recorder is installed; cost is O(numPEs)
// per boundary.
func (s *System) emitSample(at int64) {
	ms := trace.MachineSample{
		NumPEs:         s.numPEs,
		LiveContexts:   s.kern.Live(),
		RingMessages:   s.bus.Stats.Messages,
		RingWaitCycles: s.bus.Stats.WaitCycles,
	}
	for p := 0; p < s.numPEs; p++ {
		ms.ReadyContexts += s.kern.ReadyCount(p)
		if s.running[p] != nil {
			ms.RunningPEs++
		}
		if s.par != nil {
			// Worker goroutines run machines ahead of simulated time, so
			// their Stats are unreadable here (racy, and past the sample
			// boundary); the commit loop maintains a per-element mirror
			// advanced exactly as instructions are committed.
			mm := &s.par.mirror[p]
			ms.BusyCycles += mm.cycles
			ms.Instructions += mm.instrs
			ms.QueueSum += mm.qsum
		} else {
			st := &s.machines[p].Stats
			ms.BusyCycles += st.Cycles
			ms.Instructions += st.Instructions
			ms.QueueSum += st.QueueSum
		}
		ms.CacheHits += s.caches[p].Stats.Hits
		ms.CacheMisses += s.caches[p].Stats.Misses
	}
	s.rec.Sample(at, ms)
}

// graphPrio is the static dispatch priority of a graph's contexts: the
// compiler-emitted §4.5 cost-analysis weight, clamped into the context's
// 32-bit priority field. Zero for weightless (hand-written) objects.
func (s *System) graphPrio(gi int) int32 {
	w := s.prog.Obj.Graphs[gi].Weight
	if w > 1<<31-1 {
		w = 1<<31 - 1
	}
	return int32(w)
}

// dispatch starts the next ready context on an idle processing element,
// charging the context-switch or resume cost. A context the policy stole
// from another element additionally pays its migration: one ring transfer
// for the hand-off plus the roll-out of any window registers it still had
// loaded on the victim — a stolen context can never resume warm.
func (s *System) dispatch(peID int) {
	if s.running[peID] != nil {
		return
	}
	c, from := s.kern.NextReady(peID)
	if c == nil {
		return
	}
	s.running[peID] = c
	var cost int64
	resumed := from == peID && s.lastCtx[peID] == c
	if resumed {
		// The context's window registers are still loaded.
		cost = s.p.Resume
		s.resumes++
	} else {
		cost = int64(s.p.PE.SwitchBase) + int64(s.p.PE.ReadyScan)*int64(s.kern.Resident(peID))
		if prev := s.lastCtx[peID]; prev != nil && prev != c {
			n := prev.RollOut()
			cost += int64(s.p.PE.RollOut) * int64(n)
			s.rolledRegs += int64(n)
		}
		if from != peID {
			// Migration: the context's queue-page hand-off crosses the
			// ring under the ordinary contention model, and its window
			// state on the victim element rolls out.
			n := c.RollOut()
			cost += int64(s.p.PE.RollOut) * int64(n)
			s.rolledRegs += int64(n)
			s.countCross(from, peID)
			cost += s.bus.Transfer(s.now, from, peID) - s.now
			if s.lastCtx[from] == c {
				// The victim no longer holds the context's registers; a
				// dangling pointer here could alias a recycled context.
				s.lastCtx[from] = nil
			}
		}
		s.switches++
	}
	s.lastCtx[peID] = c
	if s.rec != nil {
		s.rec.BeginRun(peID, c.ID, s.now+cost, cost, resumed)
	}
	s.schedule(s.now+cost, event{kind: evStep, pe: int32(peID), ctx: int32(c.ID)})
	s.armPar(peID, c)
}

// armPar hands the freshly dispatched (or resumed) context to the
// host-parallel engine so a worker can pre-execute its lookahead window;
// a no-op under the sequential engine.
func (s *System) armPar(peID int, c *pe.Context) {
	if s.par != nil {
		s.par.arm(peID, c)
	}
}

// countCross accounts a ring transfer that crosses a worker-shard boundary
// under the host-parallel engine; a no-op under the sequential engine.
func (s *System) countCross(from, to int) {
	if s.par != nil && s.par.owner[from] != s.par.owner[to] {
		s.par.stats.CrossMessages++
	}
}

// handleStep executes the running context's next instruction — and, when
// the run is straight-line, every following instruction whose issue time
// stays strictly below the queue's next-event horizon. The batch is exact,
// not an approximation: a running context can only be unseated by its own
// blocking action (dispatch fills idle processing elements only), so the
// per-instruction evStep events the old loop round-tripped through the
// heap were a private countdown with no observers. An instruction whose
// issue time reaches the horizon is deferred back through the queue,
// because a queued event with the same time was scheduled earlier (smaller
// seq) and must run first; this reproduces the (time, seq) pop order — and
// with it every recorder hook, sample boundary, and watchdog trip —
// bit-identically.
func (s *System) handleStep(e event) {
	c := s.running[e.pe]
	if c == nil || c.ID != int(e.ctx) {
		return // stale event after a switch
	}
	m := s.machines[e.pe]
	horizon := s.q.peekTime()
	if s.p.NoBatch {
		horizon = s.now // every step reaches the horizon: event-per-step
	}
	for {
		s.instructions++
		if s.instructions > s.p.MaxInstructions {
			s.fail(fmt.Errorf("sim: exceeded %d instructions", s.p.MaxInstructions))
			return
		}
		out, err := m.ExecOne(c, s.now)
		if err != nil {
			s.fail(err)
			return
		}
		t := s.now + int64(out.Cycles)
		switch out.Act {
		case pe.ActNone:
			// Straight-line: fall through to the batch continuation test.
		case pe.ActSend:
			c.Status = pe.BlockedSend
			s.running[e.pe] = nil
			if s.rec != nil {
				s.rec.EndRun(int(e.pe), c.ID, t, trace.EndBlockedSend)
			}
			s.routeChanOp(t, int(e.pe), opSend, out.Ch, out.Val, c.ID)
			s.scheduleKick(int(e.pe), t)
			return
		case pe.ActRecv:
			c.Status = pe.BlockedRecv
			s.running[e.pe] = nil
			if s.rec != nil {
				s.rec.EndRun(int(e.pe), c.ID, t, trace.EndBlockedRecv)
			}
			s.routeChanOp(t, int(e.pe), opRecv, out.Ch, 0, c.ID)
			s.scheduleKick(int(e.pe), t)
			return
		case pe.ActTrap:
			s.handleTrap(int(e.pe), c, out.Code, out.Arg, t)
			return
		}
		if t >= horizon {
			s.schedule(t, event{kind: evStep, pe: e.pe, ctx: int32(c.ID)})
			return
		}
		// The next step would be the heap minimum anyway; take it without
		// the round-trip, replaying the bookkeeping the event pop would
		// have done: advance the clock, trip the cycle watchdog, close
		// sampling buckets, and poll for cancellation.
		s.now = t
		if s.now > s.p.MaxCycles {
			s.fail(fmt.Errorf("sim: exceeded %d cycles", s.p.MaxCycles))
			return
		}
		if s.sampleEvery > 0 {
			for s.now >= s.nextSample {
				s.emitSample(s.nextSample)
				s.nextSample += s.sampleEvery
			}
		}
		if s.instrsToPoll--; s.instrsToPoll <= 0 {
			s.instrsToPoll = ctxPollInstrs
			if err := s.runCtx.Err(); err != nil {
				s.fail(fmt.Errorf("sim: aborted at cycle %d: %w", s.now, err))
				return
			}
		}
	}
}

// routeChanOp forwards a channel operation to the channel's home message
// processor, over the ring when remote.
func (s *System) routeChanOp(t int64, fromPE int, op chanOp, ch, val int32, ctxID int) {
	if ch <= 0 {
		s.fail(fmt.Errorf("sim: context %d uses invalid channel %d", ctxID, ch))
		return
	}
	home := int(ch) % s.numPEs
	arrive := t
	if home != fromPE {
		s.countCross(fromPE, home)
		arrive = s.bus.Transfer(t, fromPE, home)
	}
	s.schedule(arrive, event{kind: evChanReq, pe: int32(home), op: op, ch: ch, val: val, ctx: int32(ctxID), src: int32(fromPE)})
}

func (s *System) handleChanReq(e event) {
	home := int(e.pe)
	start := max(s.now, s.mpFree[home])
	requester := mcache.ContextRef{PE: int(e.src), Ctx: int(e.ctx)}
	var (
		done   *mcache.Completion
		missed bool
		err    error
	)
	if e.op == opSend {
		done, missed, err = s.caches[home].Send(e.ch, e.val, requester)
	} else {
		done, missed, err = s.caches[home].Recv(e.ch, requester)
	}
	if err != nil {
		s.fail(err)
		return
	}
	cost := s.p.MPCycles
	if missed {
		cost += s.p.MPMissPenalty
	}
	finish := start + cost
	s.mpFree[home] = finish
	if s.rec != nil {
		op := trace.ChanSend
		if e.op == opRecv {
			op = trace.ChanRecv
		}
		sctx, rctx := -1, -1
		if done != nil {
			sctx, rctx = done.Sender.Ctx, done.Receiver.Ctx
		}
		s.rec.MsgOp(home, e.ch, op, start, finish, !missed, done != nil, sctx, rctx)
	}
	if done == nil {
		return // party parked in the cache until its partner arrives
	}
	// Deliver the value to the receiver and the acknowledgement to the
	// sender, over the ring when remote.
	rArrive := finish
	if done.Receiver.PE != home {
		s.countCross(home, done.Receiver.PE)
		rArrive = s.bus.Transfer(finish, home, done.Receiver.PE)
	}
	s.schedule(rArrive, event{kind: evRecvDone, pe: int32(done.Receiver.PE), ctx: int32(done.Receiver.Ctx), val: done.Value})
	sArrive := finish
	if done.Sender.PE != home {
		s.countCross(home, done.Sender.PE)
		sArrive = s.bus.Transfer(finish, home, done.Sender.PE)
	}
	s.schedule(sArrive, event{kind: evSendDone, pe: int32(done.Sender.PE), ctx: int32(done.Sender.Ctx)})
}

func (s *System) handleRecvDone(e event) {
	c, err := s.kern.Context(int(e.ctx))
	if err != nil {
		s.fail(err)
		return
	}
	if err := s.machines[e.pe].Complete(c, e.val); err != nil {
		s.fail(err)
		return
	}
	if err := s.kern.Ready(c.ID, s.now); err != nil {
		s.fail(err)
		return
	}
	s.dispatch(int(e.pe))
}

func (s *System) handleSendDone(e event) {
	c, err := s.kern.Context(int(e.ctx))
	if err != nil {
		s.fail(err)
		return
	}
	if err := s.kern.Ready(c.ID, s.now); err != nil {
		s.fail(err)
		return
	}
	s.dispatch(int(e.pe))
}

func (s *System) handleWake(e event) {
	c, err := s.kern.Context(int(e.ctx))
	if err != nil {
		s.fail(err)
		return
	}
	// The wait actor's result is a control token.
	if err := s.machines[e.pe].Complete(c, isa.Bool(true)); err != nil {
		s.fail(err)
		return
	}
	if err := s.kern.Ready(c.ID, s.now); err != nil {
		s.fail(err)
		return
	}
	s.dispatch(int(e.pe))
}

func (s *System) handleTrap(peID int, c *pe.Context, code, arg int32, t int64) {
	switch code {
	case isa.KExit:
		s.running[peID] = nil
		if s.lastCtx[peID] == c {
			s.lastCtx[peID] = nil
		}
		if s.rec != nil {
			s.rec.EndRun(peID, c.ID, t, trace.EndExited)
		}
		if err := s.kern.Exit(c.ID, t); err != nil {
			s.fail(err)
			return
		}
		if s.kern.Live() == 0 {
			s.finished = true
			s.endTime = t
			return
		}
		s.scheduleKick(peID, t)

	case isa.KRFork, isa.KIFork:
		gi := int(arg)
		if gi < 0 || gi >= len(s.prog.Obj.Graphs) {
			s.fail(fmt.Errorf("sim: context %d forks unknown graph %d", c.ID, gi))
			return
		}
		child, target := s.kern.CreateContext(gi, s.prog.QueueWords(gi), c.ID, peID, s.graphPrio(gi), t)
		cin := s.kern.AllocChannel()
		var cout int32
		if code == isa.KRFork {
			s.kern.Stats.RForks++
			cout = s.kern.AllocChannel()
			if err := s.machines[peID].Complete2(c, cin, cout); err != nil {
				s.fail(err)
				return
			}
		} else {
			s.kern.Stats.IForks++
			cout = c.Out()
			if err := s.machines[peID].Complete(c, cin); err != nil {
				s.fail(err)
				return
			}
		}
		child.SetChannels(cin, cout)
		done := t + s.p.ForkCycles
		s.schedule(done, event{kind: evStep, pe: int32(peID), ctx: int32(c.ID)})
		s.armPar(peID, c)
		s.scheduleKick(target, done)

	case isa.KChanNew:
		ch := s.kern.AllocChannel()
		if err := s.machines[peID].Complete(c, ch); err != nil {
			s.fail(err)
			return
		}
		s.schedule(t, event{kind: evStep, pe: int32(peID), ctx: int32(c.ID)})
		s.armPar(peID, c)

	case isa.KNow:
		if err := s.machines[peID].Complete(c, int32(t)); err != nil {
			s.fail(err)
			return
		}
		s.schedule(t, event{kind: evStep, pe: int32(peID), ctx: int32(c.ID)})
		s.armPar(peID, c)

	case isa.KWait:
		c.Status = pe.BlockedWait
		s.running[peID] = nil
		if s.rec != nil {
			s.rec.EndRun(peID, c.ID, t, trace.EndBlockedWait)
		}
		wake := max(t, int64(arg))
		s.schedule(wake, event{kind: evWake, pe: int32(peID), ctx: int32(c.ID)})
		s.scheduleKick(peID, t)

	default:
		s.fail(fmt.Errorf("sim: context %d: unknown kernel entry point %d", c.ID, code))
	}
}
