package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventQueueOrdering: the 4-ary heap pops in (time, seq) order for
// adversarial insertion patterns, matching a stable reference sort.
func TestEventQueueOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		var q eventQueue
		ref := make([]event, 0, n)
		for seq := 0; seq < n; seq++ {
			e := event{
				time: int64(rng.Intn(20)), // many ties to exercise seq order
				seq:  uint64(seq),
				pe:   int32(seq),
			}
			q.push(e)
			ref = append(ref, e)
		}
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].time != ref[j].time {
				return ref[i].time < ref[j].time
			}
			return ref[i].seq < ref[j].seq
		})
		for i, want := range ref {
			if q.len() == 0 {
				t.Fatalf("trial %d: queue empty after %d pops, want %d", trial, i, n)
			}
			if got := q.peekTime(); got != want.time {
				t.Fatalf("trial %d pop %d: peekTime = %d, want %d", trial, i, got, want.time)
			}
			got := q.pop()
			if got.time != want.time || got.seq != want.seq {
				t.Fatalf("trial %d pop %d: got (t=%d seq=%d), want (t=%d seq=%d)",
					trial, i, got.time, got.seq, want.time, want.seq)
			}
		}
		if q.len() != 0 {
			t.Fatalf("trial %d: %d events left after draining", trial, q.len())
		}
	}
}

// TestEventQueuePeekEmpty: an empty queue's horizon is "never".
func TestEventQueuePeekEmpty(t *testing.T) {
	var q eventQueue
	if got := q.peekTime(); got != horizonInf {
		t.Errorf("empty peekTime = %d, want horizonInf", got)
	}
}

// TestEventQueueSteadyStateAllocs: once the backing array has grown to its
// high-water mark, push/pop cycles allocate nothing — the array is the
// event free list.
func TestEventQueueSteadyStateAllocs(t *testing.T) {
	var q eventQueue
	for i := 0; i < 64; i++ {
		q.push(event{time: int64(i), seq: uint64(i)})
	}
	for q.len() > 0 {
		q.pop()
	}
	var seq uint64
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 32; i++ {
			seq++
			q.push(event{time: int64(i % 7), seq: seq})
		}
		for q.len() > 0 {
			q.pop()
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state push/pop allocates %v times per cycle, want 0", allocs)
	}
}
