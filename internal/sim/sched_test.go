package sim

import (
	"reflect"
	"strings"
	"testing"

	"queuemachine/internal/compile"
	"queuemachine/internal/sched"
	"queuemachine/internal/workloads"
)

// schedCorpus is the workload set the scheduler differential tests run:
// small instances of every Chapter 6 program shape, so the whole matrix of
// policies × workloads stays fast.
func schedCorpus() []workloads.Workload {
	return []workloads.Workload{
		workloads.MatMul(4),
		workloads.FFT(3),
		workloads.Cholesky(4),
		workloads.BinaryRecursiveSum(16),
	}
}

// runSched executes a compiled workload under one scheduler config with the
// full-log recorder attached, returning the result and the hook log.
func runSched(t *testing.T, wl workloads.Workload, art *compile.Artifact,
	pes int, cfg sched.Config) (*Result, string) {
	t.Helper()
	params := DefaultParams()
	params.Scheduler = cfg
	sys, err := New(art.Object, pes, params)
	if err != nil {
		t.Fatalf("%s/%s: New: %v", wl.Name, cfg.Name(), err)
	}
	rec := &logRecorder{every: 64}
	sys.SetRecorder(rec)
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("%s/%s: Run: %v", wl.Name, cfg.Name(), err)
	}
	if err := wl.Check(art, res.Data); err != nil {
		t.Fatalf("%s/%s on %d PEs: wrong result: %v", wl.Name, cfg.Name(), pes, err)
	}
	return res, rec.b.String()
}

// TestSchedulerDeterminism runs every policy twice on every corpus workload
// and requires identical results AND identical instrumentation logs — the
// strongest observable equality the recorder offers. A policy that
// consulted map iteration order or any other host nondeterminism fails
// here.
func TestSchedulerDeterminism(t *testing.T) {
	for _, wl := range schedCorpus() {
		art, err := compile.Compile(wl.Source, compile.Options{})
		if err != nil {
			t.Fatalf("%s: compile: %v", wl.Name, err)
		}
		for _, policy := range sched.Names() {
			cfg := sched.Config{Policy: policy}
			res1, log1 := runSched(t, wl, art, 4, cfg)
			res2, log2 := runSched(t, wl, art, 4, cfg)
			if !reflect.DeepEqual(res1, res2) {
				t.Errorf("%s/%s: two runs disagree on Result\nfirst:  %+v\nsecond: %+v",
					wl.Name, policy, res1, res2)
			}
			if log1 != log2 {
				t.Errorf("%s/%s: two runs produced different traces (%d vs %d bytes)",
					wl.Name, policy, len(log1), len(log2))
			}
		}
	}
}

// TestFIFOMatchesDefault is the refactor's central differential: an
// explicit fifo policy and the zero-value scheduler config must be the same
// machine, cycle for cycle and hook call for hook call, on every corpus
// workload and machine size.
func TestFIFOMatchesDefault(t *testing.T) {
	for _, wl := range schedCorpus() {
		art, err := compile.Compile(wl.Source, compile.Options{})
		if err != nil {
			t.Fatalf("%s: compile: %v", wl.Name, err)
		}
		for _, pes := range []int{1, 3, 8} {
			def, defLog := runSched(t, wl, art, pes, sched.Config{})
			fifo, fifoLog := runSched(t, wl, art, pes, sched.Config{Policy: sched.FIFO})
			if !reflect.DeepEqual(def, fifo) {
				t.Errorf("%s on %d PEs: explicit fifo differs from default\ndefault: %+v\nfifo:    %+v",
					wl.Name, pes, def, fifo)
			}
			if defLog != fifoLog {
				t.Errorf("%s on %d PEs: explicit fifo trace differs from default", wl.Name, pes)
			}
			if def.Kernel.Steals != 0 {
				t.Errorf("%s on %d PEs: fifo recorded %d steals, want 0",
					wl.Name, pes, def.Kernel.Steals)
			}
		}
	}
}

// TestPolicyCorrectness runs every policy on every corpus workload across
// machine sizes: whatever the schedule, the computed answer must match the
// bit-exact reference (runSched checks it), and steals must only appear
// under the steal policy.
func TestPolicyCorrectness(t *testing.T) {
	for _, wl := range schedCorpus() {
		art, err := compile.Compile(wl.Source, compile.Options{})
		if err != nil {
			t.Fatalf("%s: compile: %v", wl.Name, err)
		}
		for _, policy := range sched.Names() {
			for _, pes := range []int{1, 2, 5, 8} {
				res, _ := runSched(t, wl, art, pes, sched.Config{Policy: policy})
				if policy != sched.Steal && res.Kernel.Steals != 0 {
					t.Errorf("%s/%s on %d PEs: %d steals under a non-stealing policy",
						wl.Name, policy, pes, res.Kernel.Steals)
				}
			}
		}
	}
}

// TestStealPolicySteals pins that the steal policy actually exercises its
// mechanism on an imbalanced workload: matmul on several elements must see
// at least one cross-element dispatch.
func TestStealPolicySteals(t *testing.T) {
	wl := workloads.MatMul(4)
	art, err := compile.Compile(wl.Source, compile.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, _ := runSched(t, wl, art, 6, sched.Config{Policy: sched.Steal})
	if res.Kernel.Steals == 0 {
		t.Error("steal policy recorded no steals on matmul at 6 PEs")
	}
}

// TestUnknownPolicyRejected pins the end-to-end error: sim.New must refuse
// an unknown policy name with a message listing the valid ones.
func TestUnknownPolicyRejected(t *testing.T) {
	wl := workloads.MatMul(4)
	art, err := compile.Compile(wl.Source, compile.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	params := DefaultParams()
	params.Scheduler = sched.Config{Policy: "random"}
	_, err = New(art.Object, 2, params)
	if err == nil {
		t.Fatal("New accepted unknown scheduler policy")
	}
	if !strings.Contains(err.Error(), "locality") {
		t.Errorf("error %q does not list the valid policies", err)
	}
}
