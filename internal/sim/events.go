package sim

import "math"

// eventKind discriminates the simulator's event types.
type eventKind uint8

const (
	// evStep: a processing element executes its running context's next
	// instruction (and, under straight-line batching, every following
	// instruction up to the queue's next-event horizon).
	evStep eventKind = iota
	// evChanReq: a channel operation request arrives at its home message
	// processor.
	evChanReq
	// evRecvDone: a rendezvous value arrives at a blocked receiver.
	evRecvDone
	// evSendDone: a rendezvous acknowledgement arrives at a blocked
	// sender.
	evSendDone
	// evWake: a context's real-time wait expires.
	evWake
	// evKick: a processing element should try to dispatch a context.
	evKick
)

type chanOp uint8

const (
	opSend chanOp = iota
	opRecv
)

// event is one scheduled simulator occurrence. Events are plain values:
// they live inline in the queue's backing array and are copied in and out
// of it, so scheduling allocates nothing once the array has grown to the
// run's high-water mark — the array doubles as the event free list.
type event struct {
	time int64
	seq  uint64

	pe  int32 // processing element concerned (evStep, evKick, deliveries)
	ctx int32 // context id
	src int32 // requesting processing element (evChanReq)

	// Channel request payload.
	ch  int32
	val int32

	kind eventKind
	op   chanOp
}

// eventQueue is a deterministic min-heap ordered by (time, seq), laid out
// as an index-based 4-ary heap over a flat event array. Compared to the
// previous container/heap implementation it removes the two interface
// dispatches and the interface-boxing allocation per operation as well as
// the per-event *event allocation, and the shallower 4-ary tree roughly
// halves the sift depth at the queue sizes a simulation reaches.
type eventQueue struct {
	a []event
}

func (q *eventQueue) len() int { return len(q.a) }

// horizonInf is the batching horizon of an empty queue: no scheduled event
// can ever preempt a straight-line run.
const horizonInf = int64(math.MaxInt64)

// peekTime reports the earliest scheduled time without popping, or
// horizonInf when the queue is empty. This is the next-event horizon the
// step-batching loop runs against.
func (q *eventQueue) peekTime() int64 {
	if len(q.a) == 0 {
		return horizonInf
	}
	return q.a[0].time
}

// secondTime reports the earliest scheduled time excluding the root event:
// the batching horizon the root's handler will observe once the root is
// popped. In the 4-ary layout every non-root event is dominated by one of
// the root's at most four children, so a scan of slots 1..4 suffices.
func (q *eventQueue) secondTime() int64 {
	n := len(q.a)
	if n < 2 {
		return horizonInf
	}
	best := q.a[1].time
	for c := 2; c < n && c < 5; c++ {
		if q.a[c].time < best {
			best = q.a[c].time
		}
	}
	return best
}

// less orders events by (time, seq); seq breaks ties in schedule order,
// which is what makes the simulation deterministic.
func (q *eventQueue) less(i, j int) bool {
	if q.a[i].time != q.a[j].time {
		return q.a[i].time < q.a[j].time
	}
	return q.a[i].seq < q.a[j].seq
}

// push inserts e, sifting it up toward the root.
func (q *eventQueue) push(e event) {
	q.a = append(q.a, e)
	i := len(q.a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q.less(i, p) {
			break
		}
		q.a[i], q.a[p] = q.a[p], q.a[i]
		i = p
	}
}

// pop removes and returns the minimum event.
func (q *eventQueue) pop() event {
	top := q.a[0]
	n := len(q.a) - 1
	q.a[0] = q.a[n]
	q.a = q.a[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		least := first
		last := min(first+4, n)
		for c := first + 1; c < last; c++ {
			if q.less(c, least) {
				least = c
			}
		}
		if !q.less(least, i) {
			break
		}
		q.a[i], q.a[least] = q.a[least], q.a[i]
		i = least
	}
	return top
}
