package sim

import "container/heap"

// eventKind discriminates the simulator's event types.
type eventKind int

const (
	// evStep: a processing element executes its running context's next
	// instruction.
	evStep eventKind = iota
	// evChanReq: a channel operation request arrives at its home message
	// processor.
	evChanReq
	// evRecvDone: a rendezvous value arrives at a blocked receiver.
	evRecvDone
	// evSendDone: a rendezvous acknowledgement arrives at a blocked
	// sender.
	evSendDone
	// evWake: a context's real-time wait expires.
	evWake
	// evKick: a processing element should try to dispatch a context.
	evKick
)

type chanOp int

const (
	opSend chanOp = iota
	opRecv
)

type event struct {
	time int64
	seq  uint64
	kind eventKind

	pe  int // processing element concerned (evStep, evKick, deliveries)
	ctx int // context id
	src int // requesting processing element (evChanReq)

	// Channel request payload.
	op  chanOp
	ch  int32
	val int32
}

// eventQueue is a deterministic min-heap ordered by (time, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

var _ heap.Interface = (*eventQueue)(nil)
