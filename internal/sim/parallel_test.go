package sim

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"queuemachine/internal/compile"
	"queuemachine/internal/isa"
	"queuemachine/internal/trace"
	"queuemachine/internal/workloads"
)

// runPar executes obj under the host-parallel engine with the given worker
// count, with the same full-log and Chrome recorders runMode attaches, and
// returns the result plus both serializations.
func runPar(t *testing.T, obj *isa.Object, numPEs, workers int) (*Result, string, []byte) {
	t.Helper()
	params := DefaultParams()
	params.HostParallel = workers
	sys, err := New(obj, numPEs, params)
	if err != nil {
		t.Fatalf("New (workers=%d): %v", workers, err)
	}
	logRec := &logRecorder{every: 64}
	chrome := trace.NewChrome(64)
	sys.SetRecorder(trace.Multi(chrome, logRec))
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("Run (workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	if err := chrome.Write(&buf); err != nil {
		t.Fatalf("Chrome.Write: %v", err)
	}
	return res, logRec.b.String(), buf.Bytes()
}

// checkHostParEquivalence asserts the engine's defining property: at every
// processing-element and worker count, the host-parallel engine produces a
// Result, a hook-call log, and a Chrome trace byte-identical to the
// sequential engine's. Host, the engine's own counter block, is the single
// intentionally differing field and is checked separately.
func checkHostParEquivalence(t *testing.T, name string, obj *isa.Object, peCounts, workerCounts []int) {
	t.Helper()
	params := DefaultParams()
	for _, pes := range peCounts {
		seqRes, seqLog, seqTrace := runMode(t, obj, pes, false)
		parts := params.PartitionCount(pes)
		tried := map[int]bool{}
		for _, w := range workerCounts {
			if w > parts {
				w = parts // a worker owns whole partitions; clamp like callers do
			}
			if tried[w] {
				continue
			}
			tried[w] = true
			parRes, parLog, parTrace := runPar(t, obj, pes, w)
			if parRes.Host.Workers != w {
				t.Errorf("%s on %d PEs, %d workers: Host.Workers = %d", name, pes, w, parRes.Host.Workers)
			}
			if parRes.Host.Epochs == 0 {
				t.Errorf("%s on %d PEs, %d workers: no fill passes recorded", name, pes, w)
			}
			parRes.Host = HostStats{}
			if !reflect.DeepEqual(seqRes, parRes) {
				t.Errorf("%s on %d PEs, %d workers: Result differs from sequential engine\nseq: %+v\npar: %+v",
					name, pes, w, seqRes, parRes)
			}
			if seqLog != parLog {
				t.Errorf("%s on %d PEs, %d workers: recorder hook streams differ (seq %d bytes, par %d bytes): %s",
					name, pes, w, len(seqLog), len(parLog), firstLogDiff(seqLog, parLog))
			}
			if !bytes.Equal(seqTrace, parTrace) {
				t.Errorf("%s on %d PEs, %d workers: Chrome traces differ (%d vs %d bytes)",
					name, pes, w, len(seqTrace), len(parTrace))
			}
		}
	}
}

// TestHostParEquivalenceWorkloads drives the property over the four Chapter
// 6 benchmarks and the four second-generation workloads at small sizes.
// This is the regression test the race CI job runs under -race: a data race
// between the commit loop and a worker is a bug even when the outputs agree.
func TestHostParEquivalenceWorkloads(t *testing.T) {
	cases := []workloads.Workload{
		workloads.MatMul(3),
		workloads.FFT(2),
		workloads.Cholesky(3),
		workloads.Congruence(3),
		workloads.Bitonic(3),
		workloads.LU(4),
		workloads.Stencil(8, 2),
		workloads.Chain(8),
	}
	for _, w := range cases {
		art, err := compile.Compile(w.Source, compile.Options{})
		if err != nil {
			t.Fatalf("%s: Compile: %v", w.Name, err)
		}
		checkHostParEquivalence(t, w.Name, art.Object, []int{1, 3, 8}, []int{1, 2, 4})
	}
}

// TestHostParEquivalenceRandomPrograms drives the property over seeded
// random expression programs (the batching property's fuzz corpus).
func TestHostParEquivalenceRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		src := exprProgram(seed)
		art, err := compile.Compile(src, compile.Options{})
		if err != nil {
			t.Fatalf("seed %d: Compile: %v\n%s", seed, err, src)
		}
		checkHostParEquivalence(t, fmt.Sprintf("expr-seed-%d", seed), art.Object, []int{1, 5, 8}, []int{1, 2, 4})
	}
}

// TestHostParEquivalenceAssembly covers the blocking shapes the compiler
// doesn't emit: tight rendezvous ping-pong, wide fan-out, real-time waits.
func TestHostParEquivalenceAssembly(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		pes  []int
	}{
		{"single-context", singleContext, []int{1, 2}},
		{"producer-consumer", producerConsumer, []int{1, 2, 4}},
		{"fan-out", fanOut(4, 10), []int{1, 4, 8}},
		{"wait", waitProgram, []int{1, 2}},
	} {
		checkHostParEquivalence(t, tc.name, assemble(t, tc.src), tc.pes, []int{1, 2, 4})
	}
}

// TestHostParNoBatch: the two differential oracles compose — event-per-step
// mode under the parallel engine still matches the plain sequential run.
func TestHostParNoBatch(t *testing.T) {
	art, err := compile.Compile(workloads.Congruence(3).Source, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, wantLog, _ := runMode(t, art.Object, 4, false)
	params := DefaultParams()
	params.NoBatch = true
	params.HostParallel = 2
	sys, err := New(art.Object, 4, params)
	if err != nil {
		t.Fatal(err)
	}
	logRec := &logRecorder{every: 64}
	sys.SetRecorder(logRec)
	got, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	got.Host = HostStats{}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("NoBatch+HostParallel Result differs:\nwant: %+v\ngot:  %+v", want, got)
	}
	if wantLog != logRec.b.String() {
		t.Errorf("NoBatch+HostParallel hook streams differ: %s", firstLogDiff(wantLog, logRec.b.String()))
	}
}

// TestHostParLargeMachine: the engine is the point of 64-PE-and-up
// machines; check a 64-element run agrees with the sequential engine and
// that the shard map actually crosses workers (CrossMessages > 0).
func TestHostParLargeMachine(t *testing.T) {
	art, err := compile.Compile(workloads.Congruence(4).Source, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(art.Object, 64, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.HostParallel = 4
	par, err := Run(art.Object, 64, params)
	if err != nil {
		t.Fatal(err)
	}
	if par.Host.CrossMessages == 0 {
		t.Error("64-PE run on 4 workers counted no cross-worker messages")
	}
	par.Host = HostStats{}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("64-PE Result differs:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestHostParValidation exercises the configuration surface: worker counts
// against partition counts, the automatic count, the zero-cost-instruction
// rejection, and the machine-size cap.
func TestHostParValidation(t *testing.T) {
	obj := assemble(t, singleContext)

	t.Run("workers-exceed-partitions", func(t *testing.T) {
		params := DefaultParams()
		params.HostParallel = 64 // an 8-element machine has 4 partitions
		_, err := New(obj, 8, params)
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != "HostParallel" {
			t.Fatalf("want ConfigError on HostParallel, got %v", err)
		}
	})

	t.Run("auto-worker-count", func(t *testing.T) {
		params := DefaultParams()
		params.HostParallel = -1
		res, err := Run(obj, 8, params)
		if err != nil {
			t.Fatal(err)
		}
		want := min(params.PartitionCount(8), runtime.GOMAXPROCS(0))
		if res.Host.Workers != want {
			t.Errorf("auto worker count = %d, want %d", res.Host.Workers, want)
		}
	})

	t.Run("zero-cost-instructions", func(t *testing.T) {
		params := DefaultParams()
		params.HostParallel = 2
		params.PE.ALU = 0
		_, err := New(obj, 8, params)
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != "HostParallel" {
			t.Fatalf("want ConfigError on HostParallel, got %v", err)
		}
	})

	t.Run("machine-size-cap", func(t *testing.T) {
		_, err := New(obj, MaxPEs+1, DefaultParams())
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != "pes" {
			t.Fatalf("want ConfigError on pes, got %v", err)
		}
	})

	t.Run("256-pes", func(t *testing.T) {
		art, err := compile.Compile(workloads.Congruence(3).Source, compile.Options{})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Run(art.Object, 256, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		params := DefaultParams()
		params.HostParallel = 8
		par, err := Run(art.Object, 256, params)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Cycles != par.Cycles {
			t.Errorf("256-PE cycles differ: seq %d, par %d", seq.Cycles, par.Cycles)
		}
	})
}

// TestHostParErrorPaths: failure modes must be bit-identical too — the same
// watchdog and deadlock errors at the same simulated state, with no worker
// goroutine left behind.
func TestHostParErrorPaths(t *testing.T) {
	t.Run("max-instructions", func(t *testing.T) {
		art, err := compile.Compile(workloads.Congruence(3).Source, compile.Options{})
		if err != nil {
			t.Fatal(err)
		}
		params := DefaultParams()
		params.MaxInstructions = 100
		_, seqErr := Run(art.Object, 4, params)
		params.HostParallel = 2
		_, parErr := Run(art.Object, 4, params)
		if seqErr == nil || parErr == nil || seqErr.Error() != parErr.Error() {
			t.Errorf("watchdog errors differ:\nseq: %v\npar: %v", seqErr, parErr)
		}
	})

	t.Run("deadlock", func(t *testing.T) {
		obj := assemble(t, deadlocked)
		_, seqErr := Run(obj, 2, DefaultParams())
		params := DefaultParams()
		params.HostParallel = 1
		_, parErr := Run(obj, 2, params)
		var seqDL, parDL *DeadlockError
		if !errors.As(seqErr, &seqDL) || !errors.As(parErr, &parDL) {
			t.Fatalf("want deadlock from both engines, got seq %v, par %v", seqErr, parErr)
		}
		if seqDL.Cycle != parDL.Cycle || seqDL.Live != parDL.Live {
			t.Errorf("deadlock state differs: seq (cycle %d, live %d), par (cycle %d, live %d)",
				seqDL.Cycle, seqDL.Live, parDL.Cycle, parDL.Live)
		}
	})
}
