package gate

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"queuemachine/internal/service"
)

// TestRelayStreamsLargeBodies proves the gate relays response bodies as
// they arrive instead of buffering them whole: a stub replica writes a
// small head, flushes, and then refuses to write the multi-megabyte tail
// until the client has already received the head *through the gate*. A
// buffering relay deadlocks here (nothing reaches the client before the
// replica finishes, and the replica won't finish until the client reads),
// so a timeout on the head read is the failure signal. Gate memory stays
// bounded by relayChunk per response regardless of body size.
func TestRelayStreamsLargeBodies(t *testing.T) {
	const head = "HEAD"
	tail := bytes.Repeat([]byte("x"), 4<<20)
	release := make(chan struct{})
	replicaDone := make(chan struct{})
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			io.WriteString(w, `{"status":"ok"}`)
		case "/run":
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, head)
			w.(http.Flusher).Flush()
			<-release
			w.Write(tail)
			close(replicaDone)
		default:
			http.NotFound(w, r)
		}
	}))
	defer replica.Close()

	g, err := New(Config{Replicas: []string{replica.URL}})
	if err != nil {
		t.Fatal(err)
	}
	// Wrapped like production qgate: the access-log and SLO wrappers must
	// pass Flush through or streaming dies at the first middleware.
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	gateSrv := httptest.NewServer(service.AccessLog(logger, g.Handler()))
	defer gateSrv.Close()

	resp, err := http.Post(gateSrv.URL+"/run", "application/json",
		strings.NewReader(`{"source":"big"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}

	headBuf := make([]byte, len(head))
	got := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(resp.Body, headBuf)
		got <- err
	}()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("reading head: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("head never reached the client while the tail was unwritten: the gate buffered the response instead of streaming it")
	}
	if string(headBuf) != head {
		t.Fatalf("head = %q, want %q", headBuf, head)
	}

	// The client saw the head while the replica still held the tail back;
	// now let it finish and check the rest arrives intact.
	close(release)
	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading tail: %v", err)
	}
	if !bytes.Equal(rest, tail) {
		t.Fatalf("tail: got %d bytes, want %d", len(rest), len(tail))
	}
	select {
	case <-replicaDone:
	case <-time.After(5 * time.Second):
		t.Fatal("replica handler never finished")
	}
}
