// Package gate is the fleet front proxy: one HTTP endpoint that shards
// compile and run requests across a set of qmd replicas by artifact
// fingerprint on a consistent-hash ring.
//
// Sharding by fingerprint is what makes the replica tier a cache tier:
// every request for one program lands on the same replica, so that
// replica's in-memory LRU and singleflight group see the program's whole
// request stream, and the fleet as a whole compiles each distinct program
// once. The same ring (same vnode layout, same hash) runs inside the
// replicas for their peer-fetch tier, so gate routing and peer ownership
// agree about who owns a fingerprint.
//
// Replica failure is handled twice over: a background health loop probes
// /healthz and removes dead replicas from the ring (keys re-shard
// minimally, by consistent-hash construction), and a transport error on a
// proxied request marks the replica dead immediately and fails over to
// the next owner on the ring without surfacing the error to the client.
package gate

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"queuemachine/internal/compile"
	"queuemachine/internal/fleet"
)

// ReplicaHeader names the replica that served a proxied request, set on
// every proxied response. Tests and load generators use it to observe
// routing decisions without trusting gate-internal state.
const ReplicaHeader = "X-Qmd-Replica"

// Config sizes the gate. Replicas is the only required field.
type Config struct {
	// Replicas is the full set of qmd base URLs to shard across.
	Replicas []string
	// VirtualNodes per replica on the hash ring (default:
	// fleet.DefaultVirtualNodes). Must match the replicas' own ring
	// configuration for gate routing and peer ownership to agree.
	VirtualNodes int
	// HealthInterval is the probe period (default: 2s); HealthTimeout
	// bounds each probe (default: 1s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// MaxBodyBytes bounds proxied request bodies (default: 1 MiB). The
	// gate reads the whole body before routing — it needs the bytes to
	// compute the shard key and to replay the request on failover.
	MaxBodyBytes int64
	// ProxyTimeout bounds one proxied request attempt (default: 150s,
	// above the replicas' 2m deadline ceiling so the replica's own
	// timeout fires first and its error document reaches the client).
	ProxyTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = fleet.DefaultVirtualNodes
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 150 * time.Second
	}
	return c
}

// replicaState is the gate's account of one replica.
type replicaState struct {
	requests  atomic.Int64 // proxied requests answered by this replica
	server5xx atomic.Int64 // of those, 5xx responses
	transport atomic.Int64 // connect/read failures (failed over)
	healthy   atomic.Bool
	latency   *fleet.Histogram
}

// Gate is one front-proxy instance.
type Gate struct {
	cfg      Config
	ring     *fleet.Ring
	probe    *fleet.Client
	proxy    *http.Client
	mux      *http.ServeMux
	start    time.Time
	replicas map[string]*replicaState

	requests, failovers, unrouted atomic.Int64
}

// New builds a gate over the replica set. It fails only on an empty or
// duplicated replica list.
func New(cfg Config) (*Gate, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("gate: no replicas configured")
	}
	seen := make(map[string]bool, len(cfg.Replicas))
	states := make(map[string]*replicaState, len(cfg.Replicas))
	for _, r := range cfg.Replicas {
		if r == "" || seen[r] {
			return nil, fmt.Errorf("gate: empty or duplicate replica %q", r)
		}
		seen[r] = true
		st := &replicaState{latency: fleet.NewLatencyHistogram()}
		st.healthy.Store(true) // optimistic until the first probe
		states[r] = st
	}
	g := &Gate{
		cfg:      cfg,
		ring:     fleet.NewRing(cfg.Replicas, cfg.VirtualNodes),
		probe:    fleet.NewClient(cfg.HealthTimeout),
		proxy:    &http.Client{Timeout: cfg.ProxyTimeout},
		mux:      http.NewServeMux(),
		start:    time.Now(),
		replicas: states,
	}
	g.mux.HandleFunc("POST /compile", func(w http.ResponseWriter, r *http.Request) {
		g.handleProxy(w, r, "/compile")
	})
	g.mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		g.handleProxy(w, r, "/run")
	})
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /statsz", g.handleStatsz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	return g, nil
}

// Handler is the gate's HTTP interface.
func (g *Gate) Handler() http.Handler { return g.mux }

// Start launches the health-check loop; it stops when ctx is cancelled.
// The first sweep runs immediately so a replica that was down at boot is
// off the ring before the first request.
func (g *Gate) Start(ctx context.Context) {
	go func() {
		g.checkAll(ctx)
		t := time.NewTicker(g.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				g.checkAll(ctx)
			}
		}
	}()
}

// checkAll probes every replica concurrently and updates ring liveness.
func (g *Gate) checkAll(ctx context.Context) {
	var wg sync.WaitGroup
	for url, st := range g.replicas {
		wg.Add(1)
		go func() {
			defer wg.Done()
			probeCtx, cancel := context.WithTimeout(ctx, g.cfg.HealthTimeout)
			defer cancel()
			alive := g.probe.CheckHealth(probeCtx, url) == nil
			st.healthy.Store(alive)
			g.ring.SetAlive(url, alive)
		}()
	}
	wg.Wait()
}

// shardBody is the subset of the compile/run wire format that determines
// routing. Unknown fields are ignored: the gate must route every request
// the replicas accept, including ones from newer clients.
type shardBody struct {
	Source  string               `json:"source"`
	Options fleet.CompileOptions `json:"options"`
	Object  json.RawMessage      `json:"object"`
}

// shardKey maps a request body to its ring key. Source-bearing requests
// key by compile fingerprint — the same address the replicas' caches and
// peer ring use — so gate routing, cache residency, and peer ownership
// all name the same replica. Object-only runs and unparseable bodies fall
// back to a content hash: still deterministic, so repeats coalesce, just
// not shared with the compile namespace.
func shardKey(body []byte) string {
	var sb shardBody
	if err := json.Unmarshal(body, &sb); err == nil {
		if sb.Source != "" {
			return compile.Fingerprint(sb.Source, sb.Options.ToCompile())
		}
		if len(sb.Object) > 0 {
			sum := sha256.Sum256(sb.Object)
			return hex.EncodeToString(sum[:])
		}
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

func (g *Gate) handleProxy(w http.ResponseWriter, r *http.Request, path string) {
	g.requests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		status := http.StatusBadRequest
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	key := shardKey(body)
	owners := g.ring.Owners(key, len(g.cfg.Replicas))
	if len(owners) == 0 {
		// Every replica is marked dead. Probing found nobody, but a
		// request is here now: try the full set in ring order rather
		// than refusing outright — a replica that just came back serves
		// it and the next health sweep revives the ring.
		owners = g.ring.Nodes()
	}
	for i, replica := range owners {
		if i > 0 {
			g.failovers.Add(1)
		}
		if g.tryReplica(w, r, replica, path, body) {
			return
		}
		if r.Context().Err() != nil {
			return // client gone; retrying serves nobody
		}
	}
	g.unrouted.Add(1)
	writeJSON(w, http.StatusBadGateway,
		map[string]string{"error": "no replica reachable"})
}

// tryReplica proxies one attempt. It reports false only on a transport
// error (the replica never answered), in which case the replica is
// marked dead and nothing has been written to w — the caller may fail
// over. Any HTTP response, error or not, is relayed as-is.
func (g *Gate) tryReplica(w http.ResponseWriter, r *http.Request, replica, path string, body []byte) bool {
	st := g.replicas[replica]
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		replica+path, bytes.NewReader(body))
	if err != nil {
		st.transport.Add(1)
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := g.proxy.Do(req)
	if err != nil {
		st.transport.Add(1)
		st.healthy.Store(false)
		g.ring.SetAlive(replica, false)
		return false
	}
	defer resp.Body.Close()
	st.requests.Add(1)
	st.latency.Observe(time.Since(start))
	if resp.StatusCode >= 500 {
		st.server5xx.Add(1)
	}
	h := w.Header()
	for k, vv := range resp.Header {
		h[k] = vv
	}
	h.Set(ReplicaHeader, replica)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

func (g *Gate) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if g.ring.LiveCount() == 0 {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "no healthy replicas"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ReplicaStats is the /statsz view of one replica.
type ReplicaStats struct {
	Healthy         bool           `json:"healthy"`
	Requests        int64          `json:"requests"`
	Server5xx       int64          `json:"server_5xx"`
	TransportErrors int64          `json:"transport_errors"`
	Latency         fleet.Snapshot `json:"latency"`
}

// Stats is the gate's /statsz document. ReplicaStatsz carries each live
// replica's own /statsz verbatim, so one scrape of the gate shows the
// whole fleet's cache and coalescing behaviour.
type Stats struct {
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Requests      int64                      `json:"requests"`
	Failovers     int64                      `json:"failovers"`
	Unrouted      int64                      `json:"unrouted"`
	LiveReplicas  int                        `json:"live_replicas"`
	Replicas      map[string]ReplicaStats    `json:"replicas"`
	ReplicaStatsz map[string]json.RawMessage `json:"replica_statsz,omitempty"`
}

// Snapshot collects the gate counters; when fetchReplicas is set it also
// pulls each healthy replica's /statsz (bounded by the health timeout).
func (g *Gate) Snapshot(ctx context.Context, fetchReplicas bool) Stats {
	st := Stats{
		UptimeSeconds: time.Since(g.start).Seconds(),
		Requests:      g.requests.Load(),
		Failovers:     g.failovers.Load(),
		Unrouted:      g.unrouted.Load(),
		LiveReplicas:  g.ring.LiveCount(),
		Replicas:      make(map[string]ReplicaStats, len(g.replicas)),
	}
	for url, rs := range g.replicas {
		st.Replicas[url] = ReplicaStats{
			Healthy:         rs.healthy.Load(),
			Requests:        rs.requests.Load(),
			Server5xx:       rs.server5xx.Load(),
			TransportErrors: rs.transport.Load(),
			Latency:         rs.latency.Snapshot(),
		}
	}
	if fetchReplicas {
		st.ReplicaStatsz = g.fetchStatsz(ctx)
	}
	return st
}

// fetchStatsz pulls each healthy replica's /statsz document.
func (g *Gate) fetchStatsz(ctx context.Context) map[string]json.RawMessage {
	out := make(map[string]json.RawMessage)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for url, rs := range g.replicas {
		if !rs.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqCtx, cancel := context.WithTimeout(ctx, g.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, url+"/statsz", nil)
			if err != nil {
				return
			}
			resp, err := g.proxy.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			blob, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			if err != nil || resp.StatusCode != http.StatusOK || !json.Valid(blob) {
				return
			}
			mu.Lock()
			out[url] = blob
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out
}

func (g *Gate) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Snapshot(r.Context(), true))
}

// handleMetrics serves the gate counters in Prometheus text exposition
// format: per-replica request/error counters, liveness gauges, and a
// latency histogram per replica.
func (g *Gate) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	urls := make([]string, 0, len(g.replicas))
	for url := range g.replicas {
		urls = append(urls, url)
	}
	sort.Strings(urls)

	fmt.Fprintf(w, "# HELP qgate_requests_total Requests accepted by the gate.\n# TYPE qgate_requests_total counter\nqgate_requests_total %d\n", g.requests.Load())
	fmt.Fprintf(w, "# HELP qgate_failovers_total Proxy attempts re-routed past a dead replica.\n# TYPE qgate_failovers_total counter\nqgate_failovers_total %d\n", g.failovers.Load())
	fmt.Fprintf(w, "# HELP qgate_unrouted_total Requests no replica could be reached for (502).\n# TYPE qgate_unrouted_total counter\nqgate_unrouted_total %d\n", g.unrouted.Load())
	fmt.Fprintf(w, "# HELP qgate_live_replicas Replicas currently on the ring.\n# TYPE qgate_live_replicas gauge\nqgate_live_replicas %d\n", g.ring.LiveCount())

	emit := func(name, help, typ string, value func(*replicaState) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, url := range urls {
			fmt.Fprintf(w, "%s{replica=%q} %d\n", name, url, value(g.replicas[url]))
		}
	}
	emit("qgate_replica_requests_total", "Proxied requests answered, by replica.", "counter",
		func(rs *replicaState) int64 { return rs.requests.Load() })
	emit("qgate_replica_5xx_total", "Proxied 5xx responses, by replica.", "counter",
		func(rs *replicaState) int64 { return rs.server5xx.Load() })
	emit("qgate_replica_transport_errors_total", "Transport failures, by replica.", "counter",
		func(rs *replicaState) int64 { return rs.transport.Load() })
	emit("qgate_replica_healthy", "1 while the replica passes health checks.", "gauge",
		func(rs *replicaState) int64 {
			if rs.healthy.Load() {
				return 1
			}
			return 0
		})

	fmt.Fprintf(w, "# HELP qgate_replica_seconds Proxied request latency, by replica.\n# TYPE qgate_replica_seconds histogram\n")
	for _, url := range urls {
		h := g.replicas[url].latency
		var cum int64
		for i, bound := range h.Bounds() {
			cum += h.BucketCount(i)
			fmt.Fprintf(w, "qgate_replica_seconds_bucket{replica=%q,le=%q} %d\n",
				url, fmt.Sprintf("%g", bound), cum)
		}
		cum += h.BucketCount(len(h.Bounds()))
		fmt.Fprintf(w, "qgate_replica_seconds_bucket{replica=%q,le=\"+Inf\"} %d\n", url, cum)
		fmt.Fprintf(w, "qgate_replica_seconds_count{replica=%q} %d\n", url, h.Count())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}
