// Package gate is the fleet front proxy: one HTTP endpoint that shards
// compile and run requests across a set of qmd replicas by artifact
// fingerprint on a consistent-hash ring.
//
// Sharding by fingerprint is what makes the replica tier a cache tier:
// every request for one program lands on the same replica, so that
// replica's in-memory LRU and singleflight group see the program's whole
// request stream, and the fleet as a whole compiles each distinct program
// once. The same ring (same vnode layout, same hash) runs inside the
// replicas for their peer-fetch tier, so gate routing and peer ownership
// agree about who owns a fingerprint.
//
// Replica failure is handled twice over: a background health loop probes
// /healthz and removes dead replicas from the ring (keys re-shard
// minimally, by consistent-hash construction), and a transport error on a
// proxied request marks the replica dead immediately and fails over to
// the next owner on the ring without surfacing the error to the client.
package gate

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"queuemachine/internal/compile"
	"queuemachine/internal/fleet"
	"queuemachine/internal/xtrace"
)

// ReplicaHeader names the replica that served a proxied request, set on
// every proxied response. Tests and load generators use it to observe
// routing decisions without trusting gate-internal state.
const ReplicaHeader = "X-Qmd-Replica"

// Config sizes the gate. Replicas is the only required field.
type Config struct {
	// Replicas is the full set of qmd base URLs to shard across.
	Replicas []string
	// VirtualNodes per replica on the hash ring (default:
	// fleet.DefaultVirtualNodes). Must match the replicas' own ring
	// configuration for gate routing and peer ownership to agree.
	VirtualNodes int
	// HealthInterval is the probe period (default: 2s); HealthTimeout
	// bounds each probe (default: 1s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// MaxBodyBytes bounds proxied request bodies (default: 1 MiB). The
	// gate reads the whole body before routing — it needs the bytes to
	// compute the shard key and to replay the request on failover.
	MaxBodyBytes int64
	// ProxyTimeout bounds one proxied request attempt (default: 150s,
	// above the replicas' 2m deadline ceiling so the replica's own
	// timeout fires first and its error document reaches the client).
	ProxyTimeout time.Duration
	// Process names the gate in distributed traces (default: "qgate").
	Process string
	// TraceCapacity and TraceSlow size the gate's own flight recorder;
	// zero takes the recorder defaults. The gate records its routing and
	// attempt spans here, and /debugz/traces?id=T stitches them together
	// with the replicas' spans into the fleet-wide view.
	TraceCapacity int
	TraceSlow     time.Duration
	// SLOs declares per-route latency objectives measured at the gate —
	// the client-visible numbers, failover and queueing included.
	SLOs []xtrace.Objective
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = fleet.DefaultVirtualNodes
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 150 * time.Second
	}
	if c.Process == "" {
		c.Process = "qgate"
	}
	return c
}

// replicaState is the gate's account of one replica.
type replicaState struct {
	requests  atomic.Int64 // proxied requests answered by this replica
	server5xx atomic.Int64 // of those, 5xx responses
	transport atomic.Int64 // connect/read failures (failed over)
	healthy   atomic.Bool
	latency   *fleet.Histogram
}

// Gate is one front-proxy instance.
type Gate struct {
	cfg      Config
	ring     *fleet.Ring
	probe    *fleet.Client
	proxy    *http.Client
	mux      *http.ServeMux
	start    time.Time
	replicas map[string]*replicaState
	tracer   *xtrace.Tracer
	traces   *xtrace.Recorder
	slo      *xtrace.SLOTracker // nil without Config.SLOs

	requests, failovers, unrouted atomic.Int64
}

// New builds a gate over the replica set. It fails only on an empty or
// duplicated replica list.
func New(cfg Config) (*Gate, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("gate: no replicas configured")
	}
	seen := make(map[string]bool, len(cfg.Replicas))
	states := make(map[string]*replicaState, len(cfg.Replicas))
	for _, r := range cfg.Replicas {
		if r == "" || seen[r] {
			return nil, fmt.Errorf("gate: empty or duplicate replica %q", r)
		}
		seen[r] = true
		st := &replicaState{latency: fleet.NewLatencyHistogram()}
		st.healthy.Store(true) // optimistic until the first probe
		states[r] = st
	}
	g := &Gate{
		cfg:      cfg,
		ring:     fleet.NewRing(cfg.Replicas, cfg.VirtualNodes),
		probe:    fleet.NewClient(cfg.HealthTimeout),
		proxy:    &http.Client{Timeout: cfg.ProxyTimeout},
		mux:      http.NewServeMux(),
		start:    time.Now(),
		replicas: states,
		traces: xtrace.NewRecorder(xtrace.RecorderConfig{
			Capacity:      cfg.TraceCapacity,
			SlowThreshold: cfg.TraceSlow,
		}),
		slo: xtrace.NewSLOTracker(cfg.SLOs),
	}
	g.tracer = xtrace.NewTracer(cfg.Process, g.traces)
	g.mux.HandleFunc("POST /compile", func(w http.ResponseWriter, r *http.Request) {
		g.handleProxy(w, r, "/compile")
	})
	g.mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		g.handleProxy(w, r, "/run")
	})
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /statsz", g.handleStatsz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /debugz/traces", g.handleTraces)
	return g, nil
}

// Handler is the gate's HTTP interface.
func (g *Gate) Handler() http.Handler { return g.mux }

// Start launches the health-check loop; it stops when ctx is cancelled.
// The first sweep runs immediately so a replica that was down at boot is
// off the ring before the first request.
func (g *Gate) Start(ctx context.Context) {
	go func() {
		g.checkAll(ctx)
		t := time.NewTicker(g.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				g.checkAll(ctx)
			}
		}
	}()
}

// checkAll probes every replica concurrently and updates ring liveness.
func (g *Gate) checkAll(ctx context.Context) {
	var wg sync.WaitGroup
	for url, st := range g.replicas {
		wg.Add(1)
		go func() {
			defer wg.Done()
			probeCtx, cancel := context.WithTimeout(ctx, g.cfg.HealthTimeout)
			defer cancel()
			alive := g.probe.CheckHealth(probeCtx, url) == nil
			st.healthy.Store(alive)
			g.ring.SetAlive(url, alive)
		}()
	}
	wg.Wait()
}

// shardBody is the subset of the compile/run wire format that determines
// routing. Unknown fields are ignored: the gate must route every request
// the replicas accept, including ones from newer clients.
type shardBody struct {
	Source  string               `json:"source"`
	Options fleet.CompileOptions `json:"options"`
	Object  json.RawMessage      `json:"object"`
}

// shardKey maps a request body to its ring key. Source-bearing requests
// key by compile fingerprint — the same address the replicas' caches and
// peer ring use — so gate routing, cache residency, and peer ownership
// all name the same replica. Object-only runs and unparseable bodies fall
// back to a content hash: still deterministic, so repeats coalesce, just
// not shared with the compile namespace.
func shardKey(body []byte) string {
	var sb shardBody
	if err := json.Unmarshal(body, &sb); err == nil {
		if sb.Source != "" {
			return compile.Fingerprint(sb.Source, sb.Options.ToCompile())
		}
		if len(sb.Object) > 0 {
			sum := sha256.Sum256(sb.Object)
			return hex.EncodeToString(sum[:])
		}
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

func (g *Gate) handleProxy(w http.ResponseWriter, r *http.Request, path string) {
	g.requests.Add(1)
	start := time.Now()
	status := &statusWriter{ResponseWriter: w}
	defer func() {
		st := status.status
		if st == 0 {
			st = http.StatusOK
		}
		g.slo.Observe(strings.TrimPrefix(path, "/"), time.Since(start), st)
	}()
	ctx, root := g.tracer.StartRequest(r, "proxy")
	defer root.End()
	if id := root.TraceID(); id != "" {
		w.Header().Set(xtrace.TraceHeader, string(id))
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		st := http.StatusBadRequest
		if errors.As(err, &tooBig) {
			st = http.StatusRequestEntityTooLarge
		}
		root.SetError(err)
		writeJSON(status, st, errorDoc(ctx, err.Error()))
		return
	}
	key := shardKey(body)
	owners := g.ring.Owners(key, len(g.cfg.Replicas))
	if len(owners) == 0 {
		// Every replica is marked dead. Probing found nobody, but a
		// request is here now: try the full set in ring order rather
		// than refusing outright — a replica that just came back serves
		// it and the next health sweep revives the ring.
		owners = g.ring.Nodes()
	}
	for i, replica := range owners {
		if i > 0 {
			g.failovers.Add(1)
		}
		// Each attempt is its own span: a mid-request failover leaves two
		// routing spans under one trace, the dead replica's marked failed.
		if g.tryReplica(ctx, status, r, replica, path, body, i) {
			return
		}
		if r.Context().Err() != nil {
			return // client gone; retrying serves nobody
		}
	}
	g.unrouted.Add(1)
	err = errors.New("no replica reachable")
	root.SetError(err)
	writeJSON(status, http.StatusBadGateway, errorDoc(ctx, err.Error()))
}

// errorDoc is a gate-originated error body; on a traced request it
// carries the trace id like the replicas' error documents do.
func errorDoc(ctx context.Context, msg string) map[string]string {
	doc := map[string]string{"error": msg}
	if id := xtrace.TraceIDFrom(ctx); id != "" {
		doc["trace"] = string(id)
	}
	return doc
}

// statusWriter records the status code written through it, for SLO
// accounting on proxied responses.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (s *statusWriter) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

// Flush passes through to the wrapped writer so the streaming relay's
// per-chunk flushes survive the SLO wrapper.
func (s *statusWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// relayChunk sizes the copy buffer used to stream proxied response
// bodies; the gate's memory per relayed response is bounded by it no
// matter how large the body (a dump_data run's data segment can be
// many MiB).
const relayChunk = 64 << 10

// tryReplica proxies one attempt. It reports false only on a transport
// error (the replica never answered), in which case the replica is
// marked dead and nothing has been written to w — the caller may fail
// over. Any HTTP response, error or not, is relayed as-is, streamed
// through a bounded buffer with a flush per chunk so large bodies reach
// the client as they arrive instead of accumulating in gate memory.
func (g *Gate) tryReplica(ctx context.Context, w http.ResponseWriter, r *http.Request, replica, path string, body []byte, attempt int) bool {
	st := g.replicas[replica]
	actx, span := xtrace.StartSpan(ctx, "gate.attempt")
	span.SetAttr("replica", replica)
	if attempt > 0 {
		span.SetAttr("failover", strconv.Itoa(attempt))
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		replica+path, bytes.NewReader(body))
	if err != nil {
		st.transport.Add(1)
		span.EndErr(err)
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	xtrace.Inject(actx, req.Header)
	start := time.Now()
	resp, err := g.proxy.Do(req)
	if err != nil {
		st.transport.Add(1)
		st.healthy.Store(false)
		g.ring.SetAlive(replica, false)
		span.EndErr(err)
		return false
	}
	defer resp.Body.Close()
	st.requests.Add(1)
	st.latency.Observe(time.Since(start))
	if resp.StatusCode >= 500 {
		st.server5xx.Add(1)
	}
	h := w.Header()
	for k, vv := range resp.Header {
		h[k] = vv
	}
	h.Set(ReplicaHeader, replica)
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
	span.SetAttr("status", strconv.Itoa(resp.StatusCode))
	span.End()
	return true
}

// flushCopy streams src to w through a fixed-size buffer, flushing after
// every chunk so the client sees bytes as the replica produces them. The
// gate never holds more than one chunk of any response body.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, relayChunk)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// handleTraces serves the gate's flight recorder, and — when a trace id
// is named — the fleet-wide stitched view: the gate's own routing spans
// merged with every span the replicas recorded under the same id (the
// replica that served it, the peer it fetched from). ?stitch=0 restricts
// the answer to the gate's own spans.
//
//	GET /debugz/traces                 gate-local trace summaries
//	GET /debugz/traces?id=T            fleet-stitched span set for T
//	GET /debugz/traces?id=T&format=chrome
//	                                   the stitched view as a Chrome
//	                                   trace-event file
func (g *Gate) handleTraces(w http.ResponseWriter, r *http.Request) {
	id := xtrace.TraceID(r.URL.Query().Get("id"))
	if id == "" || r.URL.Query().Get("stitch") == "0" {
		g.traces.ServeHTTP(w, r)
		return
	}
	spans, _ := g.traces.Get(id)
	seen := make(map[xtrace.SpanID]bool, len(spans))
	for _, s := range spans {
		seen[s.ID] = true
	}
	for _, doc := range g.fetchTraces(r.Context(), id) {
		for _, s := range doc.Spans {
			if !seen[s.ID] {
				seen[s.ID] = true
				spans = append(spans, s)
			}
		}
	}
	if len(spans) == 0 {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": "trace not found: " + string(id)})
		return
	}
	xtrace.ServeSpans(w, r, id, spans)
}

// replicaTrace is the single-trace document a replica's /debugz/traces
// serves; the gate only needs the span list.
type replicaTrace struct {
	Spans []xtrace.Span `json:"spans"`
}

// fetchTraces asks every healthy replica for its spans under id. A
// replica without the trace answers 404 and contributes nothing.
func (g *Gate) fetchTraces(ctx context.Context, id xtrace.TraceID) []replicaTrace {
	var mu sync.Mutex
	var docs []replicaTrace
	var wg sync.WaitGroup
	for url, rs := range g.replicas {
		if !rs.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqCtx, cancel := context.WithTimeout(ctx, g.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(reqCtx, http.MethodGet,
				url+"/debugz/traces?id="+string(id), nil)
			if err != nil {
				return
			}
			resp, err := g.proxy.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var doc replicaTrace
			if json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&doc) != nil {
				return
			}
			mu.Lock()
			docs = append(docs, doc)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return docs
}

func (g *Gate) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if g.ring.LiveCount() == 0 {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "no healthy replicas"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ReplicaStats is the /statsz view of one replica.
type ReplicaStats struct {
	Healthy         bool           `json:"healthy"`
	Requests        int64          `json:"requests"`
	Server5xx       int64          `json:"server_5xx"`
	TransportErrors int64          `json:"transport_errors"`
	Latency         fleet.Snapshot `json:"latency"`
}

// Stats is the gate's /statsz document. ReplicaStatsz carries each live
// replica's own /statsz verbatim, so one scrape of the gate shows the
// whole fleet's cache and coalescing behaviour.
type Stats struct {
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Requests      int64                      `json:"requests"`
	Failovers     int64                      `json:"failovers"`
	Unrouted      int64                      `json:"unrouted"`
	LiveReplicas  int                        `json:"live_replicas"`
	Replicas      map[string]ReplicaStats    `json:"replicas"`
	ReplicaStatsz map[string]json.RawMessage `json:"replica_statsz,omitempty"`
	// FleetLatency is every replica's latency histogram merged into one —
	// the same Histogram code path as the per-replica figures, so the
	// aggregate quantiles are count-for-count consistent with them.
	FleetLatency fleet.Snapshot `json:"fleet_latency"`
	// SLOs reports the gate-measured burn state per route, present only
	// when objectives are configured.
	SLOs []xtrace.SLOStatus `json:"slos,omitempty"`
	// Traces reports the gate's flight recorder.
	Traces xtrace.RecorderStats `json:"traces"`
}

// fleetLatency merges every replica's histogram into one aggregate.
func (g *Gate) fleetLatency() *fleet.Histogram {
	agg := fleet.NewLatencyHistogram()
	for _, rs := range g.replicas {
		// Same layout by construction; Merge cannot fail here.
		agg.Merge(rs.latency)
	}
	return agg
}

// Snapshot collects the gate counters; when fetchReplicas is set it also
// pulls each healthy replica's /statsz (bounded by the health timeout).
func (g *Gate) Snapshot(ctx context.Context, fetchReplicas bool) Stats {
	st := Stats{
		UptimeSeconds: time.Since(g.start).Seconds(),
		Requests:      g.requests.Load(),
		Failovers:     g.failovers.Load(),
		Unrouted:      g.unrouted.Load(),
		LiveReplicas:  g.ring.LiveCount(),
		Replicas:      make(map[string]ReplicaStats, len(g.replicas)),
		FleetLatency:  g.fleetLatency().Snapshot(),
		SLOs:          g.slo.Snapshot(),
		Traces:        g.traces.Stats(),
	}
	for url, rs := range g.replicas {
		st.Replicas[url] = ReplicaStats{
			Healthy:         rs.healthy.Load(),
			Requests:        rs.requests.Load(),
			Server5xx:       rs.server5xx.Load(),
			TransportErrors: rs.transport.Load(),
			Latency:         rs.latency.Snapshot(),
		}
	}
	if fetchReplicas {
		st.ReplicaStatsz = g.fetchStatsz(ctx)
	}
	return st
}

// fetchStatsz pulls each healthy replica's /statsz document.
func (g *Gate) fetchStatsz(ctx context.Context) map[string]json.RawMessage {
	out := make(map[string]json.RawMessage)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for url, rs := range g.replicas {
		if !rs.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqCtx, cancel := context.WithTimeout(ctx, g.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, url+"/statsz", nil)
			if err != nil {
				return
			}
			resp, err := g.proxy.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			blob, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			if err != nil || resp.StatusCode != http.StatusOK || !json.Valid(blob) {
				return
			}
			mu.Lock()
			out[url] = blob
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out
}

func (g *Gate) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Snapshot(r.Context(), true))
}

// handleMetrics serves the gate counters in Prometheus text exposition
// format: per-replica request/error counters, liveness gauges, and a
// latency histogram per replica.
func (g *Gate) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	urls := make([]string, 0, len(g.replicas))
	for url := range g.replicas {
		urls = append(urls, url)
	}
	sort.Strings(urls)

	fmt.Fprintf(w, "# HELP qgate_requests_total Requests accepted by the gate.\n# TYPE qgate_requests_total counter\nqgate_requests_total %d\n", g.requests.Load())
	fmt.Fprintf(w, "# HELP qgate_failovers_total Proxy attempts re-routed past a dead replica.\n# TYPE qgate_failovers_total counter\nqgate_failovers_total %d\n", g.failovers.Load())
	fmt.Fprintf(w, "# HELP qgate_unrouted_total Requests no replica could be reached for (502).\n# TYPE qgate_unrouted_total counter\nqgate_unrouted_total %d\n", g.unrouted.Load())
	fmt.Fprintf(w, "# HELP qgate_live_replicas Replicas currently on the ring.\n# TYPE qgate_live_replicas gauge\nqgate_live_replicas %d\n", g.ring.LiveCount())

	emit := func(name, help, typ string, value func(*replicaState) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, url := range urls {
			fmt.Fprintf(w, "%s{replica=%q} %d\n", name, url, value(g.replicas[url]))
		}
	}
	emit("qgate_replica_requests_total", "Proxied requests answered, by replica.", "counter",
		func(rs *replicaState) int64 { return rs.requests.Load() })
	emit("qgate_replica_5xx_total", "Proxied 5xx responses, by replica.", "counter",
		func(rs *replicaState) int64 { return rs.server5xx.Load() })
	emit("qgate_replica_transport_errors_total", "Transport failures, by replica.", "counter",
		func(rs *replicaState) int64 { return rs.transport.Load() })
	emit("qgate_replica_healthy", "1 while the replica passes health checks.", "gauge",
		func(rs *replicaState) int64 {
			if rs.healthy.Load() {
				return 1
			}
			return 0
		})

	// Per-replica and fleet-aggregate latency go through the same
	// histogram writer; the aggregate is the replicas' histograms merged,
	// so the two sets of series always sum consistently.
	writeHist := func(name string, labels string, h *fleet.Histogram) {
		var cum int64
		for i, bound := range h.Bounds() {
			cum += h.BucketCount(i)
			fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n",
				name, labels, fmt.Sprintf("%g", bound), cum)
		}
		cum += h.BucketCount(len(h.Bounds()))
		fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
		countLabels := ""
		if labels != "" {
			countLabels = "{" + strings.TrimSuffix(labels, ",") + "}"
		}
		fmt.Fprintf(w, "%s_count%s %d\n", name, countLabels, h.Count())
	}
	fmt.Fprintf(w, "# HELP qgate_replica_seconds Proxied request latency, by replica.\n# TYPE qgate_replica_seconds histogram\n")
	for _, url := range urls {
		writeHist("qgate_replica_seconds", fmt.Sprintf("replica=%q,", url), g.replicas[url].latency)
	}
	fmt.Fprintf(w, "# HELP qgate_fleet_seconds Proxied request latency across all replicas (merged).\n# TYPE qgate_fleet_seconds histogram\n")
	writeHist("qgate_fleet_seconds", "", g.fleetLatency())

	if slos := g.slo.Snapshot(); len(slos) > 0 {
		fmt.Fprintf(w, "# HELP qgate_slo_requests_total Requests scored against a route objective.\n# TYPE qgate_slo_requests_total counter\n")
		for _, o := range slos {
			fmt.Fprintf(w, "qgate_slo_requests_total{route=%q} %d\n", o.Route, o.Requests)
		}
		fmt.Fprintf(w, "# HELP qgate_slo_bad_total Requests burning error budget (slow or 5xx, counted once).\n# TYPE qgate_slo_bad_total counter\n")
		for _, o := range slos {
			fmt.Fprintf(w, "qgate_slo_bad_total{route=%q} %d\n", o.Route, o.Bad)
		}
		fmt.Fprintf(w, "# HELP qgate_slo_burn_rate Bad fraction over budget; 1 burns exactly at the objective.\n# TYPE qgate_slo_burn_rate gauge\n")
		for _, o := range slos {
			fmt.Fprintf(w, "qgate_slo_burn_rate{route=%q} %g\n", o.Route, o.BurnRate)
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}
