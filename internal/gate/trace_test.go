package gate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"queuemachine/internal/compile"
	"queuemachine/internal/fleet"
	"queuemachine/internal/service"
	"queuemachine/internal/xtrace"
)

// tracedPost sends body to url with a fresh trace id and returns the
// response, its body, and the client-measured wall time.
func tracedPost(t *testing.T, url string, id xtrace.TraceID, body []byte) (*http.Response, []byte, time.Duration) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(xtrace.TraceHeader, string(id))
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	wall := time.Since(start)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, raw, wall
}

// TestFailoverRecordsTwoAttemptSpans: when the owning replica is dead
// the gate fails over mid-request, and the trace shows both routing
// decisions — the failed attempt with its transport error and the
// successful one marked as a failover — under one trace.
func TestFailoverRecordsTwoAttemptSpans(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // the port now refuses connections
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ok": true}`)
	}))
	defer live.Close()

	urls := []string{deadURL, live.URL}
	g, err := New(Config{Replicas: urls})
	if err != nil {
		t.Fatal(err)
	}
	// No health loop: both replicas stay optimistically on the ring, so
	// the dead one is tried first when it owns the key.
	gateSrv := httptest.NewServer(g.Handler())
	defer gateSrv.Close()

	// Find a program the ring assigns to the dead replica.
	ring := fleet.NewRing(urls, 0)
	var body []byte
	for i := 0; ; i++ {
		if i > 200 {
			t.Fatal("no program owned by the dead replica")
		}
		src := fmt.Sprintf("var v[1]:\nseq\n  v[0] := %d\n", i)
		if ring.Owner(compile.Fingerprint(src, compile.Options{})) == deadURL {
			body, _ = json.Marshal(map[string]any{"source": src})
			break
		}
	}

	id := xtrace.NewTraceID()
	resp, raw, _ := tracedPost(t, gateSrv.URL+"/run", id, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover run: status %d: %s", resp.StatusCode, raw)
	}

	spans, ok := g.traces.Get(id)
	if !ok {
		t.Fatal("failover request's trace not in the gate recorder")
	}
	var attempts []xtrace.Span
	var root xtrace.Span
	for _, s := range spans {
		switch s.Name {
		case "gate.attempt":
			attempts = append(attempts, s)
		case "proxy":
			root = s
		}
		if s.Trace != id {
			t.Errorf("span %s under trace %q, want %q", s.Name, s.Trace, id)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("got %d attempt spans, want 2 (failed + failover)", len(attempts))
	}
	var failed, succeeded *xtrace.Span
	for i := range attempts {
		if attempts[i].Error != "" {
			failed = &attempts[i]
		} else {
			succeeded = &attempts[i]
		}
	}
	if failed == nil || succeeded == nil {
		t.Fatalf("want one failed and one successful attempt, got %+v", attempts)
	}
	if failed.Attrs["replica"] != deadURL {
		t.Errorf("failed attempt names replica %q, want the dead %q", failed.Attrs["replica"], deadURL)
	}
	if succeeded.Attrs["replica"] != live.URL || succeeded.Attrs["failover"] != "1" {
		t.Errorf("successful attempt attrs = %v, want replica %q marked failover=1",
			succeeded.Attrs, live.URL)
	}
	if succeeded.Attrs["status"] != "200" {
		t.Errorf("successful attempt status attr = %q, want 200", succeeded.Attrs["status"])
	}
	if failed.Parent != root.ID || succeeded.Parent != root.ID {
		t.Error("attempt spans are not children of the proxy root")
	}
}

// lateHandler lets a test allocate a listener (and learn its URL) before
// the handler that needs that URL exists.
type lateHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (l *lateHandler) set(h http.Handler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.Lock()
	h := l.h
	l.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// slowSource builds a distinct program per seed whose simulation runs
// long enough (a multi-thousand-iteration loop) that concurrent
// identical requests reliably overlap in flight and tracing overhead is
// negligible against it.
func slowSource(seed int) string {
	return fmt.Sprintf(
		"var v[1], k:\nseq\n  k := %d\n  while k < 20000\n    k := k + 1\n  v[0] := k\n", seed)
}

// TestStitchedTraceEndToEnd is the whole observability story in one run:
// a fleet of two peered replicas behind a gate whose ring deliberately
// disagrees with the replicas' peer ring (16 vs the default 64 virtual
// nodes), so the gate routes some program to a replica that is not its
// peer-ring owner and that replica must peer-fetch the artifact.
// Concurrent identical traced requests then coalesce on the serving
// replica. The leader's trace, stitched at the gate, must be a single
// trace spanning gate, serving replica, and peer — covering at least 95%
// of the client-observed wall time — and a follower's trace must carry a
// join span pointing at the leader's trace.
func TestStitchedTraceEndToEnd(t *testing.T) {
	// Two real replicas whose Self/Peers are their actual URLs.
	var urls []string
	var lates []*lateHandler
	for i := 0; i < 2; i++ {
		lh := &lateHandler{}
		ts := httptest.NewServer(lh)
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
		lates = append(lates, lh)
	}
	var svcs []*service.Service
	for i := range urls {
		svc, err := service.New(service.Config{
			Workers: 1, // one worker: overlapping identical runs must coalesce
			Self:    urls[i],
			Peers:   urls,
			Process: urls[i],
		})
		if err != nil {
			t.Fatalf("service.New: %v", err)
		}
		svcs = append(svcs, svc)
		lates[i].set(svc.Handler())
	}
	_ = svcs

	const gateVnodes = 16 // deliberate mismatch with the peer ring's 64
	g, err := New(Config{Replicas: urls, VirtualNodes: gateVnodes})
	if err != nil {
		t.Fatal(err)
	}
	gateSrv := httptest.NewServer(g.Handler())
	t.Cleanup(gateSrv.Close)

	gateRing := fleet.NewRing(urls, gateVnodes)
	peerRing := fleet.NewRing(urls, 0)

	// nextSplitSource yields programs the two rings disagree about, so the
	// gate-chosen replica has to peer-fetch from the peer-ring owner.
	seed := 0
	nextSplitSource := func() (src string, gateOwner, peerOwner string) {
		for {
			seed++
			if seed > 5000 {
				t.Fatal("no program where gate routing and peer ownership disagree")
			}
			src = slowSource(seed)
			fp := compile.Fingerprint(src, compile.Options{})
			gateOwner = gateRing.Owner(fp)
			peerOwner = peerRing.Owner(fp)
			if gateOwner != peerOwner {
				return src, gateOwner, peerOwner
			}
		}
	}

	type outcome struct {
		id        xtrace.TraceID
		status    int
		coalesced bool
		cache     string
		wall      time.Duration
	}

	// A round may miss coalescing if the scheduler happens to serialize
	// the requests; retry with a fresh program until one round shows both
	// a peer-fetch leader and a coalesced follower.
	const rounds = 5
	const n = 4
	for round := 0; round < rounds; round++ {
		src, _, peerOwner := nextSplitSource()
		body, _ := json.Marshal(map[string]any{"source": src, "pes": 2})

		results := make([]outcome, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				id := xtrace.NewTraceID()
				resp, raw, wall := tracedPost(t, gateSrv.URL+"/run", id, body)
				var out struct {
					Coalesced  bool   `json:"coalesced"`
					CacheState string `json:"cache"`
				}
				json.Unmarshal(raw, &out)
				results[i] = outcome{id, resp.StatusCode, out.Coalesced, out.CacheState, wall}
			}()
		}
		wg.Wait()

		var leader, follower *outcome
		for i := range results {
			if results[i].status != http.StatusOK {
				t.Fatalf("round %d request %d: status %d", round, i, results[i].status)
			}
			switch {
			case !results[i].coalesced && results[i].cache == "peer":
				leader = &results[i]
			case results[i].coalesced:
				follower = &results[i]
			}
		}
		if leader == nil || follower == nil {
			continue // no overlap this round; try a fresh program
		}

		// Pull the fleet-stitched view of the leader's trace from the gate.
		resp, err := http.Get(gateSrv.URL + "/debugz/traces?id=" + string(leader.id))
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			ID    xtrace.TraceID `json:"id"`
			Spans []xtrace.Span  `json:"spans"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("decode stitched trace: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stitched trace: status %d", resp.StatusCode)
		}
		if doc.ID != leader.id {
			t.Fatalf("stitched doc id = %q, want %q", doc.ID, leader.id)
		}

		byName := make(map[string][]xtrace.Span)
		processes := make(map[string]bool)
		for _, s := range doc.Spans {
			if s.Trace != leader.id {
				t.Errorf("stitched span %s/%s carries trace %q — not a single trace",
					s.Process, s.Name, s.Trace)
			}
			byName[s.Name] = append(byName[s.Name], s)
			processes[s.Process] = true
		}
		for _, want := range []string{"proxy", "gate.attempt", "run", "artifact", "peer.fetch", "simulate", "compile"} {
			if len(byName[want]) == 0 {
				t.Errorf("stitched trace missing %q span", want)
			}
		}
		if !processes["qgate"] {
			t.Error("no gate spans in the stitched view")
		}
		if !processes[peerOwner] {
			t.Errorf("no spans from the peer-ring owner %s: peer fetch did not cross processes (have %v)",
				peerOwner, processes)
		}
		if len(processes) < 3 {
			t.Errorf("stitched trace spans %d processes, want gate + serving replica + peer", len(processes))
		}

		// The gate's root span must account for at least 95% of what the
		// client measured: the trace explains the latency, not a sliver of it.
		if roots := byName["proxy"]; len(roots) == 1 {
			covered := time.Duration(roots[0].DurUS) * time.Microsecond
			if covered < leader.wall*95/100 {
				t.Errorf("stitched root covers %v of %v client wall time (< 95%%)", covered, leader.wall)
			}
		} else {
			t.Errorf("stitched trace has %d proxy roots, want 1", len(byName["proxy"]))
		}

		// The follower's own trace records its coalesced join, pointing at
		// the leader's trace where the real work lives.
		fresp, err := http.Get(gateSrv.URL + "/debugz/traces?id=" + string(follower.id))
		if err != nil {
			t.Fatal(err)
		}
		var fdoc struct {
			Spans []xtrace.Span `json:"spans"`
		}
		if err := json.NewDecoder(fresp.Body).Decode(&fdoc); err != nil {
			t.Fatalf("decode follower trace: %v", err)
		}
		fresp.Body.Close()
		var join *xtrace.Span
		for i := range fdoc.Spans {
			if fdoc.Spans[i].Name == "join" {
				join = &fdoc.Spans[i]
			}
		}
		if join == nil {
			t.Fatal("follower trace has no join span")
		}
		if got := join.Attrs["leader_trace"]; got != string(leader.id) {
			t.Errorf("join leader_trace = %q, want %q", got, leader.id)
		}
		return // full round observed and verified
	}
	t.Fatalf("no round out of %d produced both a peer-fetch leader and a coalesced follower", rounds)
}
