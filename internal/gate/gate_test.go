package gate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"queuemachine/internal/compile"
	"queuemachine/internal/service"
	"queuemachine/internal/sim"
	"queuemachine/internal/workloads"
)

// testFleet is a gate in front of n real in-process service replicas.
type testFleet struct {
	gate     *httptest.Server
	replicas []*httptest.Server
	urls     []string
	g        *Gate
}

func newTestFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		svc, err := service.New(service.Config{Workers: 2})
		if err != nil {
			t.Fatalf("service.New: %v", err)
		}
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(ts.Close)
		f.replicas = append(f.replicas, ts)
		f.urls = append(f.urls, ts.URL)
	}
	g, err := New(Config{Replicas: f.urls, HealthInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("gate.New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	g.Start(ctx)
	f.g = g
	f.gate = httptest.NewServer(g.Handler())
	t.Cleanup(f.gate.Close)
	return f
}

// post sends body as JSON to the fleet's gate and returns status, decoded
// body, and the replica that served it.
func (f *testFleet) post(t *testing.T, path string, body any) (int, map[string]any, string) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(f.gate.URL+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("unmarshal %q: %v", raw, err)
	}
	return resp.StatusCode, out, resp.Header.Get(ReplicaHeader)
}

const testSrc = "var v[1]:\nseq\n  v[0] := 42\n"

func TestGateRouteStability(t *testing.T) {
	f := newTestFleet(t, 3)
	body := map[string]any{"source": testSrc, "pes": 2}
	status, _, first := f.post(t, "/run", body)
	if status != http.StatusOK {
		t.Fatalf("first run: status %d", status)
	}
	if first == "" {
		t.Fatal("no replica header on proxied response")
	}
	for i := 0; i < 5; i++ {
		status, out, replica := f.post(t, "/run", body)
		if status != http.StatusOK {
			t.Fatalf("run %d: status %d", i, status)
		}
		if replica != first {
			t.Fatalf("run %d routed to %s, first went to %s", i, replica, first)
		}
		if out["cached"] != true {
			t.Errorf("repeat run %d not served from cache: %v", i, out["cached"])
		}
	}
}

func TestGateSpreadsDistinctPrograms(t *testing.T) {
	f := newTestFleet(t, 3)
	seen := make(map[string]bool)
	for i := 0; i < 24; i++ {
		src := fmt.Sprintf("var v[1]:\nseq\n  v[0] := %d\n", i)
		status, _, replica := f.post(t, "/compile", map[string]any{"source": src})
		if status != http.StatusOK {
			t.Fatalf("compile %d: status %d", i, status)
		}
		seen[replica] = true
	}
	if len(seen) < 2 {
		t.Errorf("24 distinct programs all routed to one replica: %v", seen)
	}
}

// TestGateBitIdentical runs real workloads through the full gate→replica
// path and checks the simulated statistics and final data segment against
// a direct in-process simulation: the serving tier must be invisible to
// the machine being simulated.
func TestGateBitIdentical(t *testing.T) {
	f := newTestFleet(t, 3)
	cases := []workloads.Workload{
		workloads.MatMul(3),
		workloads.FFT(2),
		workloads.Congruence(3),
		workloads.BinaryRecursiveSum(16),
	}
	for _, wl := range cases {
		for _, pes := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/pes=%d", wl.Name, pes), func(t *testing.T) {
				art, err := compile.Compile(wl.Source, compile.Options{})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				params := sim.DefaultParams()
				params.KeepData = true
				want, err := sim.Run(art.Object, pes, params)
				if err != nil {
					t.Fatalf("direct sim: %v", err)
				}

				status, out, _ := f.post(t, "/run", map[string]any{
					"source": wl.Source, "pes": pes, "dump_data": true,
				})
				if status != http.StatusOK {
					t.Fatalf("gate run: status %d: %v", status, out)
				}
				stats := out["stats"].(map[string]any)
				if got := int64(stats["cycles"].(float64)); got != want.Cycles {
					t.Errorf("cycles = %d via gate, %d direct", got, want.Cycles)
				}
				if got := int64(stats["instructions"].(float64)); got != want.Instructions {
					t.Errorf("instructions = %d via gate, %d direct", got, want.Instructions)
				}
				data := stats["data"].([]any)
				if len(data) != len(want.Data) {
					t.Fatalf("data segment %d words via gate, %d direct", len(data), len(want.Data))
				}
				got := make([]int32, len(data))
				for i, v := range data {
					got[i] = int32(v.(float64))
				}
				for i := range got {
					if got[i] != want.Data[i] {
						t.Fatalf("data[%d] = %d via gate, %d direct", i, got[i], want.Data[i])
					}
				}
				if err := wl.Check(art, got); err != nil {
					t.Errorf("workload check via gate: %v", err)
				}
			})
		}
	}
}

func TestGateFailover(t *testing.T) {
	f := newTestFleet(t, 3)
	// Find a program owned by replica 0, then kill that replica: the
	// request must transparently fail over to another.
	var body map[string]any
	var owner string
	for i := 0; ; i++ {
		if i > 200 {
			t.Fatal("no program routed to a replica we can kill")
		}
		candidate := map[string]any{"source": fmt.Sprintf("var v[1]:\nseq\n  v[0] := %d\n", 1000+i)}
		_, _, replica := f.post(t, "/compile", candidate)
		if replica == f.urls[0] {
			body, owner = candidate, replica
			break
		}
	}
	f.replicas[0].Close()
	status, _, replica := f.post(t, "/compile", body)
	if status != http.StatusOK {
		t.Fatalf("failover compile: status %d", status)
	}
	if replica == owner || replica == "" {
		t.Fatalf("request still routed to dead replica %q", replica)
	}
	st := f.g.Snapshot(context.Background(), false)
	if st.Failovers == 0 {
		t.Error("failover not counted")
	}
	if st.Unrouted != 0 {
		t.Errorf("unrouted = %d, want 0", st.Unrouted)
	}
}

// TestGateCoalescesThroughProxy drives identical concurrent runs through
// the gate; because they shard to one replica, that replica's
// singleflight must collapse them.
func TestGateCoalescesThroughProxy(t *testing.T) {
	f := newTestFleet(t, 3)
	body := map[string]any{"source": workloads.MatMul(3).Source, "pes": 4}
	const n = 6
	var wg sync.WaitGroup
	replicas := make([]string, n)
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			statuses[i], _, replicas[i] = f.post(t, "/run", body)
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("run %d: status %d", i, statuses[i])
		}
		if replicas[i] != replicas[0] {
			t.Fatalf("identical runs split across replicas: %s vs %s", replicas[i], replicas[0])
		}
	}
	// The owning replica saw n concurrent identical runs; coalesced +
	// cache hits + the one execution must account for all of them.
	st := f.g.Snapshot(context.Background(), true)
	raw, ok := st.ReplicaStatsz[replicas[0]]
	if !ok {
		t.Fatalf("no replica statsz for %s", replicas[0])
	}
	var rs struct {
		CoalescedRuns int64 `json:"coalesced_runs"`
		Cache         struct {
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(raw, &rs); err != nil {
		t.Fatalf("replica statsz: %v", err)
	}
	if rs.Cache.Misses != 1 {
		t.Errorf("cache misses = %d, want exactly 1 compile", rs.Cache.Misses)
	}
}

func TestGateHealthz(t *testing.T) {
	f := newTestFleet(t, 2)
	resp, err := http.Get(f.gate.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d with live replicas", resp.StatusCode)
	}
	for _, r := range f.replicas {
		r.Close()
	}
	// The next sweep marks everything dead.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(f.gate.URL + "/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gate never noticed all replicas died")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestShardKeyDeterminism(t *testing.T) {
	body := []byte(`{"source": "var v[1]:\nseq\n  v[0] := 1\n", "pes": 4}`)
	if shardKey(body) != shardKey(body) {
		t.Error("shard key not deterministic")
	}
	// Source-bearing bodies key by fingerprint: param differences must
	// not move a program to a different replica.
	other := []byte(`{"source": "var v[1]:\nseq\n  v[0] := 1\n", "pes": 8}`)
	if shardKey(body) != shardKey(other) {
		t.Error("same program with different pes sharded differently")
	}
	if shardKey(body) != compile.Fingerprint("var v[1]:\nseq\n  v[0] := 1\n", compile.Options{}) {
		t.Error("shard key is not the compile fingerprint")
	}
	if shardKey([]byte("not json")) == shardKey([]byte("also not json")) {
		t.Error("distinct unparseable bodies collided")
	}
}
