// Package queuemachine is a complete reproduction of Bruno R. Preiss's
// thesis "Data Flow on a Queue Machine" (University of Toronto, 1985): the
// pseudo-static data-flow execution model, the simple and indexed queue
// machines, the OCCAM compiler that partitions programs into acyclic
// data-flow graphs spliced together at run time, the queue machine
// processing element with its sliding register window, and the partitioned
// ring-bus multiprocessor simulation used for the Chapter 6 evaluation.
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the compiler (occ), assembler (qasm),
// disassembler (qdis), simulator (qsim) and experiment driver (qmexp);
// examples/ holds runnable walk-throughs. The benchmarks in this package
// regenerate every table and figure of the thesis's evaluation — run
// `go test -bench=. -benchmem` and see EXPERIMENTS.md for the
// paper-versus-measured record.
package queuemachine
