// Pipeline reproduces the §3.4 study: queue vs stack execution of every
// expression parse tree on a pipelined ALU (Tables 3.2 and 3.3).
//
// Run with: go run ./examples/pipeline [-nodes 11] [-stages 4]
package main

import (
	"flag"
	"fmt"

	"queuemachine/internal/exprgen"
	"queuemachine/internal/pipesim"
)

func main() {
	maxNodes := flag.Int("nodes", 11, "largest parse tree size to sweep")
	maxStages := flag.Int("stages", 6, "deepest ALU pipeline to sweep")
	flag.Parse()

	fmt.Println("Table 3.2 — speed-up vs parse tree size (two-stage ALU):")
	fmt.Printf("%-6s %-8s %-8s %-8s\n", "nodes", "trees", "case 1", "case 2")
	for n := 1; n <= *maxNodes; n++ {
		r1 := pipesim.Sweep(n, 2, pipesim.Case1, exprgen.ForEach)
		r2 := pipesim.Sweep(n, 2, pipesim.Case2, exprgen.ForEach)
		fmt.Printf("%-6d %-8d %-8.2f %-8.2f\n", n, r1.Trees, r1.SpeedUp(), r2.SpeedUp())
	}

	fmt.Printf("\nTable 3.3 — speed-up vs pipeline depth (%d-node trees):\n", *maxNodes)
	fmt.Printf("%-8s %-8s %-8s\n", "stages", "case 1", "case 2")
	for s := 1; s <= *maxStages; s++ {
		r1 := pipesim.Sweep(*maxNodes, s, pipesim.Case1, exprgen.ForEach)
		r2 := pipesim.Sweep(*maxNodes, s, pipesim.Case2, exprgen.ForEach)
		fmt.Printf("%-8d %-8.2f %-8.2f\n", s, r1.SpeedUp(), r2.SpeedUp())
	}
	fmt.Println("\nThe queue machine meets or beats the stack machine on every tree;")
	fmt.Println("under case 1 its advantage grows with pipeline depth, and under the")
	fmt.Println("overlapped-fetch case 2 it peaks at a two-stage ALU (§3.4).")
}
