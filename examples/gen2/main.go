// Gen2 sweeps the second-generation workload suite — bitonic sorting
// network, LU decomposition, 1-D stencil, and the producer-consumer chain —
// across machine sizes, verifying every run against its Go reference and
// printing the speed-up profile of each program.
//
// Run with: go run ./examples/gen2
package main

import (
	"fmt"
	"log"

	"queuemachine/internal/core"
	"queuemachine/internal/workloads"
)

func main() {
	suite := []workloads.Workload{
		workloads.Bitonic(4),
		workloads.LU(6),
		workloads.Stencil(16, 4),
		workloads.Chain(24),
	}
	for _, wl := range suite {
		fmt.Printf("workload: %s\n", wl.Name)
		points, _, err := core.Sweep(wl.Source, []int{1, 2, 4, 8}, core.DefaultConfig(), wl.Check)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s %-12s %-10s %-12s %s\n", "PEs", "cycles", "speedup", "contexts", "utilization")
		for _, p := range points {
			fmt.Printf("  %-5d %-12d %-10.2f %-12d %.2f\n",
				p.PEs, p.Result.Cycles, p.Speedup, p.Result.Kernel.ContextsCreated, p.Utilization)
		}
		fmt.Println()
	}
	fmt.Println("(every run verified against the reference implementation)")
}
