// Matmul sweeps the thesis's matrix multiplication benchmark (Figure 6.8)
// across machine sizes and prints the system throughput ratio — the
// better-than-linear speed-up that is the thesis's headline result.
//
// Run with: go run ./examples/matmul [-n 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"queuemachine/internal/core"
	"queuemachine/internal/workloads"
)

func main() {
	n := flag.Int("n", 8, "matrix dimension")
	flag.Parse()

	wl := workloads.MatMul(*n)
	fmt.Printf("workload: %s (row-parallel, dynamic context per loop iteration)\n\n", wl.Name)
	points, _, err := core.Sweep(wl.Source, []int{1, 2, 4, 8}, core.DefaultConfig(), wl.Check)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-5s %-12s %-10s %-12s %s\n", "PEs", "cycles", "speedup", "contexts", "utilization")
	for _, p := range points {
		fmt.Printf("%-5d %-12d %-10.2f %-12d %.2f\n",
			p.PEs, p.Result.Cycles, p.Speedup, p.Result.Kernel.ContextsCreated, p.Utilization)
	}
	fmt.Println("\n(result verified against the reference implementation at every size)")
}
