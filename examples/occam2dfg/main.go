// Occam2dfg walks one OCCAM program through every stage of the Chapter 4
// compiler: the Intermediate Form Table with its live-value tags, the
// spliced context data-flow graphs with the π_I transfer orders, and the
// generated indexed-queue-machine assembly.
//
// Run with: go run ./examples/occam2dfg
package main

import (
	"fmt"
	"log"
	"strings"

	"queuemachine/internal/compile"
	"queuemachine/internal/ift"
)

const src = `var v[1], x, y:
chan c:
seq
  x := 3
  par
    c ! x * x
    c ? y
  if
    y > 5
      y := y + 100
    y <= 5
      skip
  v[0] := y
`

func main() {
	fmt.Println("source:")
	fmt.Print(src)
	art, err := compile.Compile(src, compile.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== intermediate form table (I, O, live outputs) ===")
	for _, e := range art.Table.Entries {
		if e.Kind == ift.KMain {
			continue
		}
		fmt.Printf("%-3d %-10v I=%v O=%v live=%v\n",
			e.Index, e.Kind, e.Inputs(), e.Outputs(), e.LiveOutputs())
	}

	fmt.Println("\n=== context graphs and splice protocols ===")
	for _, info := range art.Graphs {
		fmt.Printf("graph %-12s receives %v, returns %v, %d nodes\n",
			info.Name, info.Ins, info.Outs, len(info.Order))
	}

	fmt.Println("\n=== generated queue machine assembly ===")
	fmt.Println(strings.TrimSpace(art.Assembly))
}
