// Quickstart: the queue machine in three steps.
//
//  1. Evaluate an arithmetic expression on the simple queue machine (and
//     the stack machine for comparison), reproducing Table 3.1.
//  2. Compile a small OCCAM program with the Chapter 4 compiler.
//  3. Execute it on the simulated multiprocessor and read the result back
//     out of the data segment.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"queuemachine/internal/bintree"
	"queuemachine/internal/core"
	"queuemachine/internal/queue"
)

func main() {
	// Step 1: f := a*b + (c-d)/e on the simple queue machine.
	const expr = "a*b + (c-d)/e"
	tree := bintree.MustParseExpr(expr)
	env := queue.Env{"a": 7, "b": 3, "c": 20, "d": 6, "e": 2}

	fmt.Printf("expression: f := %s with %v\n\n", expr, env)
	fmt.Println("queue machine executes the level-order traversal:")
	states, result, err := queue.TraceSimple(queue.CompileTreeSymbolic(bintree.LevelOrder(tree)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(queue.FormatTrace(states))
	fmt.Printf("symbolic result: %s\n", result)

	qseq, err := queue.CompileTree(bintree.LevelOrder(tree), env)
	if err != nil {
		log.Fatal(err)
	}
	qv, err := queue.EvalSimple(qseq)
	if err != nil {
		log.Fatal(err)
	}
	sseq, err := queue.CompileTree(bintree.PostOrder(tree), env)
	if err != nil {
		log.Fatal(err)
	}
	sv, err := queue.EvalStack(sseq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queue machine: %d   stack machine: %d\n\n", qv, sv)

	// Steps 2 and 3: compile and run an OCCAM program that sums the
	// squares 1..10 in a while loop spliced across dynamic contexts.
	src := `var v[1], sum, k:
seq
  sum := 0
  k := 1
  while k <= 10
    seq
      sum := sum + (k * k)
      k := k + 1
  v[0] := sum
`
	fmt.Println("OCCAM program:")
	fmt.Println(src)
	res, art, err := core.Run(src, 2, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	base, err := art.VectorBase("v")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum of squares 1..10 = %d (want 385)\n", res.Data[base/4])
	fmt.Printf("executed %d instructions in %d cycles across %d dynamic contexts on 2 PEs\n",
		res.Instructions, res.Cycles, res.Kernel.ContextsCreated)
}
