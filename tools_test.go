package queuemachine

// Integration tests for the command-line toolchain: compile an OCCAM
// program with occ, inspect it with qdis, execute it with qsim, assemble a
// hand-written program with qasm, and regenerate an experiment with qmexp.

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildTools compiles the five commands once into a shared temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("tool builds in -short mode")
	}
	dir := t.TempDir()
	for _, tool := range []string{"occ", "qasm", "qdis", "qsim", "qmexp", "qmd"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestToolchainRoundTrip(t *testing.T) {
	bin := buildTools(t)
	work := t.TempDir()

	// A program whose result we can check from qsim's dump.
	src := filepath.Join(work, "prog.occ")
	if err := os.WriteFile(src, []byte(`var v[1], sum:
seq
  sum := 0
  seq k = [1 for 10]
    sum := sum + k
  v[0] := sum
`), 0o644); err != nil {
		t.Fatal(err)
	}

	// occ -S prints assembly.
	asmOut := runTool(t, filepath.Join(bin, "occ"), "-S", src)
	if !strings.Contains(asmOut, ".graph main") || !strings.Contains(asmOut, "trap #0,#0") {
		t.Errorf("occ -S output unexpected:\n%s", asmOut)
	}

	// occ -run executes directly.
	runOut := runTool(t, filepath.Join(bin, "occ"), "-run", "2", src)
	if !strings.Contains(runOut, "[0] = 55") {
		t.Errorf("occ -run did not produce 55:\n%s", runOut)
	}

	// occ writes an object file; qdis disassembles it; qsim runs it.
	runTool(t, filepath.Join(bin, "occ"), src)
	qobj := filepath.Join(work, "prog.qobj")
	disOut := runTool(t, filepath.Join(bin, "qdis"), qobj)
	if !strings.Contains(disOut, ".entry main") {
		t.Errorf("qdis output unexpected:\n%s", disOut)
	}
	simOut := runTool(t, filepath.Join(bin, "qsim"), "-pes", "4", "-dump", qobj)
	if !strings.Contains(simOut, "[0] = 55") {
		t.Errorf("qsim did not produce 55:\n%s", simOut)
	}
	if !strings.Contains(simOut, "avg queue length") {
		t.Errorf("qsim statistics incomplete:\n%s", simOut)
	}

	// qsim -json emits the qmd service's machine-readable statistics.
	jsonOut := runTool(t, filepath.Join(bin, "qsim"), "-pes", "4", "-dump", "-json", qobj)
	var stats struct {
		Cycles       int64   `json:"cycles"`
		PEs          int     `json:"pes"`
		Instructions int64   `json:"instructions"`
		Data         []int32 `json:"data"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &stats); err != nil {
		t.Fatalf("qsim -json produced invalid JSON: %v\n%s", err, jsonOut)
	}
	if stats.Cycles <= 0 || stats.PEs != 4 || stats.Instructions <= 0 {
		t.Errorf("qsim -json stats unexpected: %+v", stats)
	}
	if len(stats.Data) == 0 || stats.Data[0] != 55 {
		t.Errorf("qsim -json data segment = %v, want [55]", stats.Data)
	}

	// occ dumps compiler internals.
	iftOut := runTool(t, filepath.Join(bin, "occ"), "-dump-ift", src)
	if !strings.Contains(iftOut, "assign") {
		t.Errorf("occ -dump-ift output unexpected:\n%s", iftOut)
	}
	dfgOut := runTool(t, filepath.Join(bin, "occ"), "-dump-dfg", src)
	if !strings.Contains(dfgOut, "graph main") {
		t.Errorf("occ -dump-dfg output unexpected:\n%s", dfgOut)
	}
}

func TestToolchainAssembler(t *testing.T) {
	bin := buildTools(t)
	work := t.TempDir()
	src := filepath.Join(work, "hand.qasm")
	if err := os.WriteFile(src, []byte(`.data 1
.entry main
.graph main queue=32
	plus #40,#2 :r0
	store+1 #0,r0
	trap #0,#0
`), 0o644); err != nil {
		t.Fatal(err)
	}
	runTool(t, filepath.Join(bin, "qasm"), src)
	simOut := runTool(t, filepath.Join(bin, "qsim"), "-pes", "1", "-dump",
		filepath.Join(work, "hand.qobj"))
	if !strings.Contains(simOut, "[0] = 42") {
		t.Errorf("assembled program result wrong:\n%s", simOut)
	}
}

func TestToolchainExperiments(t *testing.T) {
	bin := buildTools(t)
	listOut := runTool(t, filepath.Join(bin, "qmexp"), "-list")
	if !strings.Contains(listOut, "table3.2") || !strings.Contains(listOut, "fig6.8") {
		t.Errorf("qmexp -list output unexpected:\n%s", listOut)
	}
	expOut := runTool(t, filepath.Join(bin, "qmexp"), "-e", "table4.5")
	if !strings.Contains(expOut, "pi_I order") {
		t.Errorf("qmexp -e output unexpected:\n%s", expOut)
	}
}

// TestToolchainDaemon boots qmd, serves one compile-and-run round trip
// over HTTP, and shuts it down with SIGTERM.
func TestToolchainDaemon(t *testing.T) {
	bin := buildTools(t)
	// Reserve a port, free it, and hand it to the daemon. The tiny race
	// is test-local and the healthz poll below absorbs slow starts.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cmd := exec.Command(filepath.Join(bin, "qmd"), "-addr", addr)
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting qmd: %v", err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("qmd never became healthy: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	body := `{"source": "var v[1]:\nseq\n  v[0] := 41 + 1\n", "pes": 2, "dump_data": true}`
	resp, err := http.Post(base+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/run: %d %s", resp.StatusCode, raw)
	}
	var run struct {
		Stats struct {
			Cycles int64   `json:"cycles"`
			Data   []int32 `json:"data"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(raw, &run); err != nil {
		t.Fatalf("/run response %q: %v", raw, err)
	}
	if run.Stats.Cycles <= 0 || len(run.Stats.Data) == 0 || run.Stats.Data[0] != 42 {
		t.Errorf("/run stats unexpected: %s", raw)
	}

	// The Prometheus view of the same counters: one run has been served.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d %s", resp.StatusCode, metrics)
	}
	for _, want := range []string{
		`qmd_requests_total{endpoint="run"} 1`,
		"qmd_sim_cycles_total",
		`qmd_request_seconds_count{endpoint="run"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Errorf("qmd exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Error("qmd did not exit on SIGTERM")
	}
}

// TestToolchainDeadlockExit checks qsim's contract for hung programs: exit
// status 3 with the kernel's context snapshot on stderr, keeping stdout
// clean for the statistics parsers that consume it.
func TestToolchainDeadlockExit(t *testing.T) {
	bin := buildTools(t)
	work := t.TempDir()
	src := filepath.Join(work, "hang.qasm")
	// The context opens a channel and receives on it; no sender exists.
	if err := os.WriteFile(src, []byte(`.graph main queue=32
	trap #3,#0 :r17
	recv r17 :r0
	trap #0,#0
`), 0o644); err != nil {
		t.Fatal(err)
	}
	runTool(t, filepath.Join(bin, "qasm"), src)

	cmd := exec.Command(filepath.Join(bin, "qsim"), "-pes", "2", filepath.Join(work, "hang.qobj"))
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 3 {
		t.Fatalf("qsim exit = %v, want exit status 3\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "deadlock") || !strings.Contains(stderr.String(), "blocked-recv") {
		t.Errorf("stderr lacks the deadlock snapshot:\n%s", stderr.String())
	}
	if strings.Contains(stdout.String(), "deadlock") {
		t.Errorf("deadlock report leaked to stdout:\n%s", stdout.String())
	}
}

// TestToolchainTracing exercises the observability flags through the built
// binary: -trace writes a loadable trace-event file and -timeline embeds
// the sampled series in the JSON statistics.
func TestToolchainTracing(t *testing.T) {
	bin := buildTools(t)
	work := t.TempDir()
	src := filepath.Join(work, "prog.occ")
	if err := os.WriteFile(src, []byte(`var v[1], sum:
seq
  sum := 0
  seq k = [1 for 10]
    sum := sum + k
  v[0] := sum
`), 0o644); err != nil {
		t.Fatal(err)
	}
	runTool(t, filepath.Join(bin, "occ"), src)
	qobj := filepath.Join(work, "prog.qobj")
	traceFile := filepath.Join(work, "trace.json")

	jsonOut := runTool(t, filepath.Join(bin, "qsim"),
		"-pes", "2", "-json", "-trace", traceFile, "-timeline", "100", qobj)

	var stats struct {
		Cycles   int64 `json:"cycles"`
		Timeline *struct {
			BucketCycles int64 `json:"bucket_cycles"`
			Buckets      []struct {
				EndCycle     int64 `json:"end_cycle"`
				Instructions int64 `json:"instructions"`
			} `json:"buckets"`
		} `json:"timeline"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &stats); err != nil {
		t.Fatalf("qsim -json: %v\n%s", err, jsonOut)
	}
	if stats.Timeline == nil || stats.Timeline.BucketCycles != 100 || len(stats.Timeline.Buckets) == 0 {
		t.Fatalf("timeline missing from statistics:\n%s", jsonOut)
	}
	if last := stats.Timeline.Buckets[len(stats.Timeline.Buckets)-1]; last.EndCycle != stats.Cycles {
		t.Errorf("timeline ends at %d, run at %d", last.EndCycle, stats.Cycles)
	}

	blob, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("trace file is not valid trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}
}

func TestToolchainErrors(t *testing.T) {
	bin := buildTools(t)
	// Unknown experiment id exits nonzero.
	cmd := exec.Command(filepath.Join(bin, "qmexp"), "-e", "nosuch")
	if err := cmd.Run(); err == nil {
		t.Error("qmexp accepted an unknown experiment")
	}
	// A compile error propagates as a nonzero exit.
	work := t.TempDir()
	bad := filepath.Join(work, "bad.occ")
	if err := os.WriteFile(bad, []byte("seq\n  x := 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command(filepath.Join(bin, "occ"), "-S", bad)
	if err := cmd.Run(); err == nil {
		t.Error("occ accepted an undeclared variable")
	}
}
